"""Population-level aggregation for fleet runs.

The paper reports point observations from two machines and 46 students;
a fleet run turns the same studies into *populations* (thousands of
machines/users), so the aggregates here report rates **with confidence
intervals** -- the statistical upgrade the original evaluation could not
make at n=2.

Everything returned is JSON-safe and deterministic: integer sums are
exact, floats are computed from those sums in a fixed order and rounded
to a fixed precision, and no wall-clock value ever enters an aggregate.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.counters import Counters

#: Decimal places for every float in an aggregate -- byte-stable JSON.
_PRECISION = 6

#: z for 95% two-sided intervals.
_Z95 = 1.959963984540054


def wilson_interval(
    successes: int, trials: int, z: float = _Z95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because fleet proportions are
    routinely extreme (block rate ~1.0, false-positive rate ~0.0), where
    the Wald interval collapses to a useless zero width.
    """
    if trials < 0:
        raise ValueError(f"trials must be >= 0, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} out of range for {trials} trials")
    if trials == 0:
        return (0.0, 1.0)
    phat = successes / trials
    denom = 1.0 + z * z / trials
    centre = phat + z * z / (2 * trials)
    margin = z * math.sqrt(phat * (1.0 - phat) / trials + z * z / (4 * trials * trials))
    return ((centre - margin) / denom, (centre + margin) / denom)


def proportion_summary(successes: int, trials: int) -> Dict[str, Any]:
    """A rate plus its 95% Wilson interval, rounded for stable JSON."""
    low, high = wilson_interval(successes, trials)
    rate = successes / trials if trials else 0.0
    return {
        "successes": successes,
        "trials": trials,
        "rate": round(rate, _PRECISION),
        "ci95_low": round(low, _PRECISION),
        "ci95_high": round(high, _PRECISION),
    }


def _distribution(values: List[int]) -> Dict[str, Any]:
    """Min/mean/max of a per-machine integer metric (empty-safe)."""
    if not values:
        return {"min": 0, "mean": 0.0, "max": 0, "n": 0}
    return {
        "min": min(values),
        "mean": round(sum(values) / len(values), _PRECISION),
        "max": max(values),
        "n": len(values),
    }


def _sum_counts(dicts: List[Dict[str, int]]) -> Dict[str, int]:
    total: Dict[str, int] = {}
    for entry in dicts:
        for key in sorted(entry):
            total[key] = total.get(key, 0) + int(entry[key])
    return dict(sorted(total.items()))


def aggregate_longterm(
    envelopes: List[Dict[str, Any]], meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Combine per-machine long-term shard envelopes into one report.

    *envelopes* must already be ordered by shard index (the engine
    guarantees it); each is the dict built by
    :func:`repro.workloads.longterm.run_longterm_shard`.
    """
    arms: Dict[str, Dict[str, Any]] = {}
    for arm in ("protected", "unprotected"):
        results = [envelope[arm] for envelope in envelopes]
        stolen = _sum_counts([r["stolen_counts"] for r in results])
        blocked = _sum_counts([r["blocked_counts"] for r in results])
        stolen_total = sum(stolen.values())
        blocked_total = sum(blocked.values())
        attempts = stolen_total + blocked_total
        legit_actions = sum(r["legit_actions"] for r in results)
        legit_failures = sum(r["legit_failures"] for r in results)
        arms[arm] = {
            "machines": len(results),
            "stolen_counts": stolen,
            "blocked_counts": blocked,
            "items_stolen": stolen_total,
            "attempts_blocked": blocked_total,
            "passwords_captured": sum(r["passwords_captured"] for r in results),
            "legit_actions": legit_actions,
            "legit_failures": legit_failures,
            "device_grants": sum(r["device_grants"] for r in results),
            "device_denials": sum(r["device_denials"] for r in results),
            "alerts_shown": sum(r["alerts_shown"] for r in results),
            "spy_rounds": sum(r["spy_rounds"] for r in results),
            "block_rate": proportion_summary(blocked_total, attempts),
            "steal_rate": proportion_summary(stolen_total, attempts),
            "false_positive_rate": proportion_summary(legit_failures, legit_actions),
            "stolen_per_machine": _distribution(
                [sum(r["stolen_counts"].values()) for r in results]
            ),
            "counters": Counters.merged(
                envelope["counters"][arm] for envelope in envelopes
            ).snapshot(),
        }
    aggregate: Dict[str, Any] = {
        "study": "longterm",
        "machines": len(envelopes),
        "protected": arms["protected"],
        "unprotected": arms["unprotected"],
    }
    if meta:
        aggregate["meta"] = meta
    return aggregate


def aggregate_usability(
    envelopes: List[Dict[str, Any]], meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Combine usability shard envelopes into one population report."""
    outcomes: List[Dict[str, Any]] = []
    for envelope in envelopes:
        outcomes.extend(envelope["outcomes"])
    participants = len(outcomes)
    identical = sum(1 for o in outcomes if o["likert_score"] == 1)
    blocked = sum(1 for o in outcomes if o["camera_blocked"])
    displayed = sum(1 for o in outcomes if o["alert_displayed"])
    reactions: Dict[str, int] = {}
    for outcome in outcomes:
        reactions[outcome["reaction"]] = reactions.get(outcome["reaction"], 0) + 1
    noticed = participants - reactions.get("DID_NOT_NOTICE", 0)
    aggregate: Dict[str, Any] = {
        "study": "usability",
        "participants": participants,
        "reactions": dict(sorted(reactions.items())),
        "identical_experience": proportion_summary(identical, participants),
        "camera_blocked": proportion_summary(blocked, participants),
        "alert_displayed": proportion_summary(displayed, participants),
        "alert_noticed": proportion_summary(noticed, participants),
    }
    if meta:
        aggregate["meta"] = meta
    return aggregate
