"""Population-level aggregation for fleet runs.

The paper reports point observations from two machines and 46 students;
a fleet run turns the same studies into *populations* (thousands of
machines/users), so the aggregates here report rates **with confidence
intervals** -- the statistical upgrade the original evaluation could not
make at n=2.

Everything returned is JSON-safe and deterministic: integer sums are
exact, floats are computed from those sums in a fixed order and rounded
to a fixed precision, and no wall-clock value ever enters an aggregate.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.counters import Counters

#: Decimal places for every float in an aggregate -- byte-stable JSON.
_PRECISION = 6

#: z for 95% two-sided intervals.
_Z95 = 1.959963984540054


def wilson_interval(
    successes: int, trials: int, z: float = _Z95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because fleet proportions are
    routinely extreme (block rate ~1.0, false-positive rate ~0.0), where
    the Wald interval collapses to a useless zero width.
    """
    if trials < 0:
        raise ValueError(f"trials must be >= 0, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} out of range for {trials} trials")
    if trials == 0:
        return (0.0, 1.0)
    phat = successes / trials
    denom = 1.0 + z * z / trials
    centre = phat + z * z / (2 * trials)
    margin = z * math.sqrt(phat * (1.0 - phat) / trials + z * z / (4 * trials * trials))
    return ((centre - margin) / denom, (centre + margin) / denom)


def proportion_summary(successes: int, trials: int) -> Dict[str, Any]:
    """A rate plus its 95% Wilson interval, rounded for stable JSON."""
    low, high = wilson_interval(successes, trials)
    rate = successes / trials if trials else 0.0
    return {
        "successes": successes,
        "trials": trials,
        "rate": round(rate, _PRECISION),
        "ci95_low": round(low, _PRECISION),
        "ci95_high": round(high, _PRECISION),
    }


def _distribution(values: List[int]) -> Dict[str, Any]:
    """Min/mean/max of a per-machine integer metric (empty-safe)."""
    if not values:
        return {"min": 0, "mean": 0.0, "max": 0, "n": 0}
    return {
        "min": min(values),
        "mean": round(sum(values) / len(values), _PRECISION),
        "max": max(values),
        "n": len(values),
    }


def _sum_counts(dicts: List[Dict[str, int]]) -> Dict[str, int]:
    total: Dict[str, int] = {}
    for entry in dicts:
        for key in sorted(entry):
            total[key] = total.get(key, 0) + int(entry[key])
    return dict(sorted(total.items()))


def aggregate_longterm(
    envelopes: List[Dict[str, Any]], meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Combine per-machine long-term shard envelopes into one report.

    *envelopes* must already be ordered by shard index (the engine
    guarantees it); each is the dict built by
    :func:`repro.workloads.longterm.run_longterm_shard`.
    """
    arms: Dict[str, Dict[str, Any]] = {}
    for arm in ("protected", "unprotected"):
        results = [envelope[arm] for envelope in envelopes]
        stolen = _sum_counts([r["stolen_counts"] for r in results])
        blocked = _sum_counts([r["blocked_counts"] for r in results])
        stolen_total = sum(stolen.values())
        blocked_total = sum(blocked.values())
        attempts = stolen_total + blocked_total
        legit_actions = sum(r["legit_actions"] for r in results)
        legit_failures = sum(r["legit_failures"] for r in results)
        arms[arm] = {
            "machines": len(results),
            "stolen_counts": stolen,
            "blocked_counts": blocked,
            "items_stolen": stolen_total,
            "attempts_blocked": blocked_total,
            "passwords_captured": sum(r["passwords_captured"] for r in results),
            "legit_actions": legit_actions,
            "legit_failures": legit_failures,
            "device_grants": sum(r["device_grants"] for r in results),
            "device_denials": sum(r["device_denials"] for r in results),
            "alerts_shown": sum(r["alerts_shown"] for r in results),
            "spy_rounds": sum(r["spy_rounds"] for r in results),
            "block_rate": proportion_summary(blocked_total, attempts),
            "steal_rate": proportion_summary(stolen_total, attempts),
            "false_positive_rate": proportion_summary(legit_failures, legit_actions),
            "stolen_per_machine": _distribution(
                [sum(r["stolen_counts"].values()) for r in results]
            ),
            "counters": Counters.merged(
                envelope["counters"][arm] for envelope in envelopes
            ).snapshot(),
        }
    aggregate: Dict[str, Any] = {
        "study": "longterm",
        "machines": len(envelopes),
        "protected": arms["protected"],
        "unprotected": arms["unprotected"],
    }
    if meta:
        aggregate["meta"] = meta
    return aggregate


def aggregate_usability(
    envelopes: List[Dict[str, Any]], meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Combine usability shard envelopes into one population report."""
    outcomes: List[Dict[str, Any]] = []
    for envelope in envelopes:
        outcomes.extend(envelope["outcomes"])
    participants = len(outcomes)
    identical = sum(1 for o in outcomes if o["likert_score"] == 1)
    blocked = sum(1 for o in outcomes if o["camera_blocked"])
    displayed = sum(1 for o in outcomes if o["alert_displayed"])
    reactions: Dict[str, int] = {}
    for outcome in outcomes:
        reactions[outcome["reaction"]] = reactions.get(outcome["reaction"], 0) + 1
    noticed = participants - reactions.get("DID_NOT_NOTICE", 0)
    aggregate: Dict[str, Any] = {
        "study": "usability",
        "participants": participants,
        "reactions": dict(sorted(reactions.items())),
        "identical_experience": proportion_summary(identical, participants),
        "camera_blocked": proportion_summary(blocked, participants),
        "alert_displayed": proportion_summary(displayed, participants),
        "alert_noticed": proportion_summary(noticed, participants),
    }
    if meta:
        aggregate["meta"] = meta
    return aggregate


# ---------------------------------------------------------------------------
# Streaming accumulators
#
# The list-based aggregates above hold every envelope in memory at once.
# The classes below carry the same statistics as *online* state -- integer
# sums, count dicts, and distribution extrema -- so a million-user fleet
# folds shard by shard in O(1) parent memory and still finalises to the
# **byte-identical** aggregate (same integer totals, same float operations
# in the same order, same rounding).
# ---------------------------------------------------------------------------


class StreamingProportion:
    """An online binomial proportion: fold (successes, trials) increments,
    emit the same dict as :func:`proportion_summary` at the end.

    The Wilson interval itself is computed once at finalise time from the
    exact integer sums, so merging partial accumulators is plain integer
    addition -- associative and commutative by construction.
    """

    __slots__ = ("successes", "trials")

    def __init__(self, successes: int = 0, trials: int = 0) -> None:
        self.successes = successes
        self.trials = trials

    def add(self, successes: int, trials: int) -> None:
        self.successes += successes
        self.trials += trials

    def merge(self, other: "StreamingProportion") -> None:
        self.successes += other.successes
        self.trials += other.trials

    def summary(self) -> Dict[str, Any]:
        return proportion_summary(self.successes, self.trials)


class StreamingDistribution:
    """Online min/mean/max matching :func:`_distribution` exactly.

    Keeps the integer total (not a running mean), so the finalised mean is
    the same single division the batch version performs.
    """

    __slots__ = ("n", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.n = 0
        self.total = 0
        self.minimum = 0
        self.maximum = 0

    def add(self, value: int) -> None:
        if self.n == 0:
            self.minimum = value
            self.maximum = value
        else:
            if value < self.minimum:
                self.minimum = value
            if value > self.maximum:
                self.maximum = value
        self.n += 1
        self.total += value

    def merge(self, other: "StreamingDistribution") -> None:
        if other.n == 0:
            return
        if self.n == 0:
            self.minimum, self.maximum = other.minimum, other.maximum
        else:
            self.minimum = min(self.minimum, other.minimum)
            self.maximum = max(self.maximum, other.maximum)
        self.n += other.n
        self.total += other.total

    def summary(self) -> Dict[str, Any]:
        if self.n == 0:
            return {"min": 0, "mean": 0.0, "max": 0, "n": 0}
        return {
            "min": self.minimum,
            "mean": round(self.total / self.n, _PRECISION),
            "max": self.maximum,
            "n": self.n,
        }


def iter_count_pairs(counts: Any) -> Iterable[Tuple[str, int]]:
    """(name, value) pairs from a plain dict *or* a packed-counter view.

    Streamed envelopes carry counter dicts as
    :class:`repro.fleet.records.PackedCounters`; materialised envelopes
    (legacy aggregates, spool round-trips) carry plain dicts.  Both
    expose ``items()``.
    """
    return counts.items()


def count_total(counts: Any) -> int:
    """Sum of a count mapping's values (dict or packed view)."""
    total = getattr(counts, "total", None)
    if callable(total):
        return total()
    return sum(counts.values())


def add_counts(accumulator: Dict[str, int], counts: Any) -> None:
    """Fold one shard's count mapping into a running total, in place."""
    for key, value in iter_count_pairs(counts):
        accumulator[key] = accumulator.get(key, 0) + int(value)


def merge_counters(registry: Counters, counts: Any) -> None:
    """Fold one shard's counter payload into a :class:`Counters` registry.

    Packed views merge blob-to-registry in one pass (the shared-memory
    path); dicts and registries use the existing merge primitives.
    """
    merge_into = getattr(counts, "merge_into", None)
    if callable(merge_into):
        merge_into(registry)
    elif isinstance(counts, Counters):
        registry.merge(counts)
    else:
        registry.merge_snapshot(counts)


class _LongtermArm:
    """Online state for one arm (protected/unprotected) of the long-term
    study -- everything :func:`aggregate_longterm` derives per arm."""

    __slots__ = (
        "machines", "stolen", "blocked", "passwords_captured",
        "legit_actions", "legit_failures", "device_grants",
        "device_denials", "alerts_shown", "spy_rounds",
        "stolen_per_machine", "counters",
    )

    def __init__(self) -> None:
        self.machines = 0
        self.stolen: Dict[str, int] = {}
        self.blocked: Dict[str, int] = {}
        self.passwords_captured = 0
        self.legit_actions = 0
        self.legit_failures = 0
        self.device_grants = 0
        self.device_denials = 0
        self.alerts_shown = 0
        self.spy_rounds = 0
        self.stolen_per_machine = StreamingDistribution()
        self.counters = Counters()

    def fold(self, result: Dict[str, Any], arm_counters: Any) -> None:
        self.machines += 1
        add_counts(self.stolen, result["stolen_counts"])
        add_counts(self.blocked, result["blocked_counts"])
        self.passwords_captured += result["passwords_captured"]
        self.legit_actions += result["legit_actions"]
        self.legit_failures += result["legit_failures"]
        self.device_grants += result["device_grants"]
        self.device_denials += result["device_denials"]
        self.alerts_shown += result["alerts_shown"]
        self.spy_rounds += result["spy_rounds"]
        self.stolen_per_machine.add(count_total(result["stolen_counts"]))
        merge_counters(self.counters, arm_counters)

    def merge(self, other: "_LongtermArm") -> None:
        self.machines += other.machines
        add_counts(self.stolen, other.stolen)
        add_counts(self.blocked, other.blocked)
        self.passwords_captured += other.passwords_captured
        self.legit_actions += other.legit_actions
        self.legit_failures += other.legit_failures
        self.device_grants += other.device_grants
        self.device_denials += other.device_denials
        self.alerts_shown += other.alerts_shown
        self.spy_rounds += other.spy_rounds
        self.stolen_per_machine.merge(other.stolen_per_machine)
        self.counters.merge(other.counters)

    def summary(self) -> Dict[str, Any]:
        stolen = dict(sorted(self.stolen.items()))
        blocked = dict(sorted(self.blocked.items()))
        stolen_total = sum(stolen.values())
        blocked_total = sum(blocked.values())
        attempts = stolen_total + blocked_total
        return {
            "machines": self.machines,
            "stolen_counts": stolen,
            "blocked_counts": blocked,
            "items_stolen": stolen_total,
            "attempts_blocked": blocked_total,
            "passwords_captured": self.passwords_captured,
            "legit_actions": self.legit_actions,
            "legit_failures": self.legit_failures,
            "device_grants": self.device_grants,
            "device_denials": self.device_denials,
            "alerts_shown": self.alerts_shown,
            "spy_rounds": self.spy_rounds,
            "block_rate": proportion_summary(blocked_total, attempts),
            "steal_rate": proportion_summary(stolen_total, attempts),
            "false_positive_rate": proportion_summary(
                self.legit_failures, self.legit_actions
            ),
            "stolen_per_machine": self.stolen_per_machine.summary(),
            "counters": self.counters.snapshot(),
        }


class LongtermState:
    """Accumulator behind :func:`longterm_reducer`."""

    __slots__ = ("machines", "arms")

    def __init__(self) -> None:
        self.machines = 0
        self.arms = {"protected": _LongtermArm(), "unprotected": _LongtermArm()}

    def fold(self, envelope: Dict[str, Any]) -> None:
        self.machines += 1
        for arm, accumulator in self.arms.items():
            accumulator.fold(envelope[arm], envelope["counters"][arm])

    def merge(self, other: "LongtermState") -> "LongtermState":
        self.machines += other.machines
        for arm, accumulator in self.arms.items():
            accumulator.merge(other.arms[arm])
        return self

    def finalize(self, meta: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        aggregate: Dict[str, Any] = {
            "study": "longterm",
            "machines": self.machines,
            "protected": self.arms["protected"].summary(),
            "unprotected": self.arms["unprotected"].summary(),
        }
        if meta:
            aggregate["meta"] = dict(meta)
        return aggregate


class UsabilityState:
    """Accumulator behind :func:`usability_reducer`."""

    __slots__ = ("participants", "identical", "blocked", "displayed", "reactions")

    def __init__(self) -> None:
        self.participants = 0
        self.identical = 0
        self.blocked = 0
        self.displayed = 0
        self.reactions: Dict[str, int] = {}

    def fold(self, envelope: Dict[str, Any]) -> None:
        for outcome in envelope["outcomes"]:
            self.participants += 1
            if outcome["likert_score"] == 1:
                self.identical += 1
            if outcome["camera_blocked"]:
                self.blocked += 1
            if outcome["alert_displayed"]:
                self.displayed += 1
            reaction = outcome["reaction"]
            self.reactions[reaction] = self.reactions.get(reaction, 0) + 1

    def merge(self, other: "UsabilityState") -> "UsabilityState":
        self.participants += other.participants
        self.identical += other.identical
        self.blocked += other.blocked
        self.displayed += other.displayed
        add_counts(self.reactions, other.reactions)
        return self

    def finalize(self, meta: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        noticed = self.participants - self.reactions.get("DID_NOT_NOTICE", 0)
        aggregate: Dict[str, Any] = {
            "study": "usability",
            "participants": self.participants,
            "reactions": dict(sorted(self.reactions.items())),
            "identical_experience": proportion_summary(
                self.identical, self.participants
            ),
            "camera_blocked": proportion_summary(self.blocked, self.participants),
            "alert_displayed": proportion_summary(
                self.displayed, self.participants
            ),
            "alert_noticed": proportion_summary(noticed, self.participants),
        }
        if meta:
            aggregate["meta"] = dict(meta)
        return aggregate


def longterm_reducer():
    """The long-term study's :class:`repro.fleet.reducers.StreamingReducer`."""
    from repro.fleet.reducers import StreamingReducer

    return StreamingReducer(
        init=LongtermState,
        fold=lambda state, envelope, index: state.fold(envelope),
        merge=lambda left, right: left.merge(right),
        finalize=lambda state, meta: state.finalize(dict(meta) if meta else None),
    )


def usability_reducer():
    """The usability study's :class:`repro.fleet.reducers.StreamingReducer`."""
    from repro.fleet.reducers import StreamingReducer

    return StreamingReducer(
        init=UsabilityState,
        fold=lambda state, envelope, index: state.fold(envelope),
        merge=lambda left, right: left.merge(right),
        finalize=lambda state, meta: state.finalize(dict(meta) if meta else None),
    )
