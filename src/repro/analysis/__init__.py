"""Analysis and result regeneration.

- :mod:`repro.analysis.benchops` -- the five Table I workloads as rigs
  shared by the pytest-benchmark suite and the table renderer;
- :mod:`repro.analysis.metrics` -- timing and overhead statistics;
- :mod:`repro.analysis.tables` -- ``python -m repro.analysis.tables``
  regenerates Table I;
- :mod:`repro.analysis.population` -- population-level aggregation (rates
  with confidence intervals) for ``python -m repro fleet`` runs.
"""

from repro.analysis.benchops import (
    ALL_RIGS,
    ClipboardRig,
    DeviceAccessRig,
    FilesystemRig,
    ScreenCaptureRig,
    SharedMemoryRig,
)
from repro.analysis.decomposition import (
    ComponentCost,
    measure_components,
    render_report,
)
from repro.analysis.metrics import (
    TimingResult,
    mean,
    overhead_percent,
    stdev,
    time_callable,
)
from repro.analysis.population import (
    aggregate_longterm,
    aggregate_usability,
    proportion_summary,
    wilson_interval,
)
from repro.analysis.tables import TableIResult, TableRow, measure_row, measure_table_i

__all__ = [
    "aggregate_longterm",
    "aggregate_usability",
    "proportion_summary",
    "wilson_interval",
    "ALL_RIGS",
    "ClipboardRig",
    "ComponentCost",
    "measure_components",
    "render_report",
    "DeviceAccessRig",
    "FilesystemRig",
    "ScreenCaptureRig",
    "SharedMemoryRig",
    "TableIResult",
    "TableRow",
    "TimingResult",
    "mean",
    "measure_row",
    "measure_table_i",
    "overhead_percent",
    "stdev",
    "time_callable",
]
