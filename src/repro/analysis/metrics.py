"""Measurement helpers: timing, statistics, overhead computation."""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable, List, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (empty input is an error, as it should be)."""
    if not values:
        raise ValueError("mean of empty sequence")
    return statistics.fmean(values)


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation; 0.0 for fewer than two values."""
    return statistics.stdev(values) if len(values) >= 2 else 0.0


def overhead_percent(baseline: float, modified: float) -> float:
    """Relative overhead of *modified* vs *baseline*, in percent.

    This is the paper's Table I metric: (Overhaul - Baseline) / Baseline.
    """
    if baseline <= 0:
        raise ValueError(f"baseline duration must be positive, got {baseline}")
    return (modified - baseline) / baseline * 100.0


@dataclass
class TimingResult:
    """Wall-clock timings of one repeated measurement."""

    label: str
    samples_seconds: List[float]

    @property
    def mean_seconds(self) -> float:
        return mean(self.samples_seconds)

    @property
    def stdev_seconds(self) -> float:
        return stdev(self.samples_seconds)

    @property
    def best_seconds(self) -> float:
        return min(self.samples_seconds)


def time_callable(
    label: str,
    fn: Callable[[], None],
    repeats: int = 5,
    warmup: int = 1,
) -> TimingResult:
    """Run *fn* ``warmup + repeats`` times; keep wall-clock for the repeats.

    Mirrors the paper's methodology of five timed runs per configuration
    with averages compared.
    """
    if repeats < 1:
        raise ValueError("need at least one timed repeat")
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return TimingResult(label, samples)
