"""The benchmarked operations of Table I, as reusable rigs.

Each rig builds a machine in one of the two Table I configurations --

- **baseline**: an unmodified kernel and X server (``Machine.baseline()``);
- **overhaul**: the full stack with the Section V-A measurement
  methodology, i.e. ``force_grant=True`` so the monitor "grant[s] access to
  resources even when there is no user interaction, in order to exercise
  the entire execution path";

and exposes a ``run(n)`` method performing *n* operations of the row's
workload.  The pytest-benchmark suite and the Table I renderer both consume
these rigs, so the numbers in EXPERIMENTS.md and ``pytest benchmarks/``
measure literally the same code.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.apps.base import SimApp
from repro.apps.clipboard_apps import TextEditor
from repro.core.config import OverhaulConfig, benchmark_config
from repro.core.notifications import MSG_INTERACTION, MSG_PERMISSION_QUERY
from repro.core.system import Machine
from repro.kernel.mm import PAGE_SIZE
from repro.kernel.vfs import OpenMode
from repro.sim.rng import RandomSource


def _build_machine(
    protected: bool,
    config: Optional[OverhaulConfig] = None,
    screen_size: Optional[Tuple[int, int]] = None,
) -> Machine:
    if protected:
        return Machine.with_overhaul(
            config if config is not None else benchmark_config(),
            screen_size=screen_size,
        )
    return Machine.baseline(screen_size=screen_size)


class DeviceAccessRig:
    """Table I row 1: repeatedly open (and close) the microphone node.

    The paper opened its mic device 10 million times; ``run(n)`` performs
    *n* open/close pairs through the full syscall path.
    """

    name = "Device Access"
    paper_overhead_percent = 2.17

    def __init__(self, protected: bool, config: Optional[OverhaulConfig] = None) -> None:
        self.machine = _build_machine(protected, config)
        self.app = SimApp(self.machine, "/usr/bin/devbench", comm="devbench")
        self.machine.settle()
        self._path = self.machine.kernel.device_path("mic0")
        self._kernel = self.machine.kernel
        self._task = self.app.task

    def run(self, n: int) -> None:
        kernel = self._kernel
        task = self._task
        path = self._path
        for _ in range(n):
            fd = kernel.sys_open(task, path, OpenMode.READ)
            kernel.sys_close(task, fd)


class ClipboardRig:
    """Table I row 2: clipboard paste operations.

    "Since in the X Window System a paste is significantly more costly than
    a copy, we configured our benchmark to only perform pastes" -- each
    ``run`` iteration is one full ICCCM paste round trip (ConvertSelection,
    SelectionRequest, ChangeProperty, SelectionNotify, GetProperty+delete).
    """

    name = "Clipboard"
    paper_overhead_percent = 2.96

    def __init__(self, protected: bool, config: Optional[OverhaulConfig] = None) -> None:
        self.machine = _build_machine(protected, config)
        self.source = TextEditor(self.machine, comm="clip-source")
        self.target = TextEditor(self.machine, comm="clip-target")
        self.machine.settle()
        # One copy seeds the selection; force_grant (or baseline) lets it
        # through without interaction.
        self.source.copy_text(b"benchmark-clipboard-payload")

    def run(self, n: int) -> None:
        paste = self.target.paste_text
        for _ in range(n):
            paste()


class ScreenCaptureRig:
    """Table I row 3: full-screen GetImage captures (imlib2-style).

    The paper took 1 000 captures, excluding file-save time; we exclude it
    too by never writing the image anywhere.
    """

    name = "Screen Capture"
    paper_overhead_percent = 2.34

    def __init__(self, protected: bool, config: Optional[OverhaulConfig] = None) -> None:
        self.machine = _build_machine(protected, config)
        self.app = SimApp(self.machine, "/usr/bin/scrbench", comm="scrbench")
        # Give the screen realistic content so composition does real work:
        # a capture must copy window pixels, which is where the paper's
        # baseline cost lives (imlib2 pulling a full-screen image).
        for index in range(4):
            painter = SimApp(self.machine, f"/usr/bin/painter{index}", comm=f"painter{index}")
            painter.paint(bytes([index]) * (128 * 1024))
        self.machine.settle()

    def run(self, n: int) -> None:
        capture = self.app.capture_screen
        for _ in range(n):
            capture()


class SharedMemoryRig:
    """Table I row 4: writes to a mapped shared segment.

    The paper wrote 10 billion times to segments of 1..10 000 pages with
    sequential and random patterns, finding no correlation with overhead,
    and reports the 10 000-page random-write case.  ``run`` performs *n*
    page-sized random-offset writes; simulated time advances a little per
    write so the 500 ms wait-list genuinely expires and re-arms during the
    run (as wall time did in the original).
    """

    name = "Shared Memory"
    paper_overhead_percent = 0.63

    #: Simulated microseconds consumed per write iteration.
    TIME_PER_WRITE_US = 50

    def __init__(
        self,
        protected: bool,
        config: Optional[OverhaulConfig] = None,
        pages: int = 10_000,
        random_offsets: bool = True,
        seed: int = 7,
    ) -> None:
        self.machine = _build_machine(protected, config)
        self.writer = SimApp(self.machine, "/usr/bin/shmbench", comm="shmbench", with_window=False)
        self.machine.settle()
        kernel = self.machine.kernel
        self.segment = kernel.shm.shmget(0xBEEF, pages)
        self.area = kernel.shm.attach(self.writer.task, self.segment)
        self.pages = pages
        self._offsets_rng = RandomSource(seed, "shm-offsets")
        self.random_offsets = random_offsets
        self._payload = b"\xa5" * 64

    def run(self, n: int) -> None:
        kernel = self.machine.kernel
        scheduler = self.machine.scheduler
        task = self.writer.task
        area = self.area
        payload = self._payload
        limit = self.pages * PAGE_SIZE - len(payload)
        if self.random_offsets:
            offsets = [self._offsets_rng.randint(0, limit) for _ in range(n)]
        else:
            offsets = [(i * len(payload)) % limit for i in range(n)]
        tick = self.TIME_PER_WRITE_US
        for offset in offsets:
            kernel.shm.write(task, area, offset, payload)
            scheduler.run_for(tick)

    @property
    def faults(self) -> int:
        return self.machine.kernel.shm.total_faults


class FilesystemRig:
    """Table I row 5: Bonnie++-style file churn.

    The paper created, stat'ed and deleted 102 400 empty files in a single
    directory and could only measure overhead on creation (Overhaul does
    not interpose on stat or unlink).  ``run`` performs *n*
    create/stat/delete triples in one directory.
    """

    name = "Bonnie++"
    paper_overhead_percent = 0.11

    def __init__(self, protected: bool, config: Optional[OverhaulConfig] = None) -> None:
        self.machine = _build_machine(protected, config)
        self.app = SimApp(self.machine, "/usr/bin/bonnie", comm="bonnie", with_window=False)
        self.machine.settle()
        kernel = self.machine.kernel
        kernel.sys_mkdir(self.app.task, "/home/user/bench")
        self._counter = 0

    def run(self, n: int) -> None:
        kernel = self.machine.kernel
        task = self.app.task
        base = self._counter
        self._counter += n
        for i in range(n):
            path = f"/home/user/bench/f{base + i}"
            fd = kernel.sys_creat(task, path)
            kernel.sys_close(task, fd)
            kernel.sys_stat(task, path)
            kernel.sys_unlink(task, path)


class DecisionPathRig:
    """The mediated decision hot path, end to end.

    Not a Table I row: this rig isolates the critical path every mediated
    operation shares -- interaction notification -> netlink -> permission
    monitor -> decision -> audit record -- without any workload on top.
    Each ``run`` iteration is one N_{A,t} notification followed by one
    Q_{A,t} paste query through the display manager's authenticated
    channel, so its throughput is the ceiling for every Table I row.
    """

    name = "Decision Path"
    paper_overhead_percent = None

    def __init__(self, protected: bool = True, config: Optional[OverhaulConfig] = None) -> None:
        if not protected:
            raise ValueError("the decision-path rig only exists on a protected machine")
        self.machine = _build_machine(True, config)
        self.app = SimApp(self.machine, "/usr/bin/decbench", comm="decbench")
        self.machine.settle()
        overhaul = self.machine.overhaul
        assert overhaul is not None
        self._channel = overhaul.channel
        self._xtask = self.machine.xserver_task
        self._pid = self.app.task.pid

    def run(self, n: int) -> None:
        channel = self._channel
        xtask = self._xtask
        send = channel.send_to_kernel
        now = self.machine.scheduler.now
        pid = self._pid
        notify = {"pid": pid, "timestamp": now}
        query = {"pid": pid, "operation": "paste", "timestamp": now}
        for _ in range(n):
            send(xtask, MSG_INTERACTION, notify)
            send(xtask, MSG_PERMISSION_QUERY, query)


class ComposeRig:
    """The display composition path, isolated.

    Not a Table I row: this rig tracks the damage-driven composition cache
    that backs every screen capture.  It maps *windows* painted windows and
    then exercises the 2D framebuffer composer in one of six modes:

    - **warm** (the default): the stack never changes between captures, so
      on the fast path every composition after the first is a cache hit --
      throughput measures the O(1) unchanged-screen path;
    - **damaged** (``damaged=True``): the *top* (visible) window is redrawn
      in full before every capture, so every composition must re-blit that
      window's rect into the framebuffer -- throughput measures the
      damage-driven patch path plus the invalidation bookkeeping;
    - **partial** (``partial=True``): the *bottom* window of a deep stack
      takes a region draw (``draw_rect``) before every composition.  On the
      2D screen that window is fully occluded, so the composer culls its
      first rect, flags the drawable, and every later draw+compose pair
      collapses to a memo-lane write plus a cache hit -- the steady state
      an animating background window hits in practice;
    - **scroll** (``mode="scroll"``): one full-width row of the visible top
      window is redrawn per frame at a descending offset, modelling a
      terminal/browser scroll; each compose patches exactly one row;
    - **drag** (``mode="drag"``): a one-pixel-wide full-height column is
      redrawn at a moving x offset, modelling a drag ghost/outline; each
      compose patches a narrow multi-row rect (the shape the old 1D spans
      inflated into full-width bands);
    - **anim** (``mode="anim"``): every window in a *tiled* (non-
      overlapping) stack takes one region draw per frame before a single
      compose, modelling concurrent window animations; each compose drains
      a multi-entry journal.

    Modes other than warm/damaged use small windows and a screen cut to
    fit, so a round measures the patch machinery, not byte shoveling.  Set
    ``incremental_compose = False`` on the rig's X server to push the same
    workload through the full-recompose fallback -- the gap is what damage
    rectangles buy.
    """

    name = "Compose"
    paper_overhead_percent = None

    #: Alternating full-window damage payloads (64x4 cells): two pre-built
    #: buffers so the damaged mode measures recomposition, not bytes
    #: construction.
    _PAYLOADS = (b"\x01" * 256, b"\x02" * 256)

    #: Alternating region payloads for the partial/anim modes (one 32-byte
    #: band) and the scroll mode (one 64-byte row).
    _RECT_PAYLOADS = (b"\x01" * 32, b"\x02" * 32)
    _ROW_PAYLOADS = (b"\x03" * 64, b"\x04" * 64)

    #: Alternating column payloads for the drag mode (1 cell x 16 rows).
    _COLUMN_PAYLOADS = (b"\x05" * 16, b"\x06" * 16)

    def __init__(
        self,
        protected: bool,
        config: Optional[OverhaulConfig] = None,
        windows: int = 16,
        damaged: bool = False,
        partial: bool = False,
        mode: Optional[str] = None,
    ) -> None:
        from repro.xserver.window import Geometry

        if mode is None:
            mode = "partial" if partial else ("damaged" if damaged else "warm")
        if mode not in ("warm", "damaged", "partial", "scroll", "drag", "anim"):
            raise ValueError(f"unknown compose mode {mode!r}")
        self.mode = mode
        self.damaged = mode == "damaged"
        self.partial = mode == "partial"
        # Everything but the warm mode keeps windows small (and the screen
        # cut down to match) so a round measures the incremental patch path
        # itself rather than memcpy throughput over megabytes of unchanged
        # neighbours.
        if mode in ("partial", "damaged"):
            screen, shape, content = (64, 8), Geometry(0, 0, 64, 4), 256
        elif mode in ("scroll", "drag"):
            screen, shape, content = (64, 16), Geometry(0, 0, 64, 16), 1024
        elif mode == "anim":
            screen, shape, content = (64, 4 * windows), None, 256
        else:
            screen, shape, content = None, None, 1024
        self.machine = _build_machine(protected, config, screen_size=screen)
        self.app = SimApp(self.machine, "/usr/bin/composebench", comm="composebench")
        self.painters = []
        for index in range(windows):
            if mode == "anim":
                # Tiled vertically: every window stays visible, so each
                # frame's journal really carries one entry per window.
                shape = Geometry(0, 4 * index, 64, 4)
            painter = SimApp(
                self.machine, f"/usr/bin/cpaint{index}", comm=f"cpaint{index}",
                geometry=shape,
            )
            painter.paint(bytes([index % 255 + 1]) * content)
            self.painters.append(painter)
        self.machine.settle()

    def run(self, n: int) -> None:
        mode = self.mode
        # Compose directly in the draw-driven modes: the capture request
        # path (ownership checks, permission gate, reply plumbing) is
        # measured by the capture rigs; these modes isolate composition.
        compose = self.machine.xserver.compose_screen
        if mode == "partial":
            draw_rect = self.painters[0].window.draw_rect
            payloads = self._RECT_PAYLOADS
            for i in range(n):
                draw_rect(16, 0, 32, 1, payloads[i & 1])
                compose()
            return
        if mode == "scroll":
            window = self.painters[-1].window
            draw_rect = window.draw_rect
            height = window.geometry.height
            payloads = self._ROW_PAYLOADS
            for i in range(n):
                draw_rect(0, i % height, 64, 1, payloads[i & 1])
                compose()
            return
        if mode == "drag":
            window = self.painters[-1].window
            draw_rect = window.draw_rect
            width = window.geometry.width
            height = window.geometry.height
            payloads = self._COLUMN_PAYLOADS
            for i in range(n):
                draw_rect(i % width, 0, 1, height, payloads[i & 1])
                compose()
            return
        if mode == "anim":
            draws = [painter.window.draw_rect for painter in self.painters]
            payloads = self._RECT_PAYLOADS
            for i in range(n):
                payload = payloads[i & 1]
                row = i & 3
                for draw_rect in draws:
                    draw_rect(16, row, 32, 1, payload)
                compose()
            return
        capture = self.app.capture_screen
        if mode == "warm":
            for _ in range(n):
                capture()
            return
        # damaged: the top window is the visible one; redrawing it in full
        # forces a real blit into the framebuffer on every capture.
        draw = self.painters[-1].window.draw
        payloads = self._PAYLOADS
        for i in range(n):
            draw(payloads[i & 1])
            capture()


#: Every Table I row, in paper order.
ALL_RIGS = [DeviceAccessRig, ClipboardRig, ScreenCaptureRig, SharedMemoryRig, FilesystemRig]
