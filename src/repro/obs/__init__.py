"""Observability: decision-path tracing and cross-layer counters.

The paper verified correctness by log inspection; :mod:`repro.obs` makes
that inspection structural.  Three pieces:

- :class:`~repro.obs.tracer.Tracer` -- virtual-time-stamped spans with
  parent/child links across all four layers, zero-cost when disabled;
- :class:`~repro.obs.counters.Counters` /
  :func:`~repro.obs.counters.collect_counters` -- exact per-category
  operation counts gathered from every subsystem, attached to benchmark
  results so latency numbers always ship with the op counts behind them;
- :func:`~repro.obs.decision_path.render_decision_report` -- reconstructs,
  for every permission verdict, the full input provenance -> notification
  -> netlink -> verdict -> alert chain from one trace.

Try it::

    python -m repro trace
"""

from repro.obs.counters import Counters, collect_counters
from repro.obs.decision_path import (
    DecisionPath,
    build_decision_paths,
    render_decision_report,
    run_traced_quickstart,
)
from repro.obs.tracer import NULL_TRACER, Span, Tracer

__all__ = [
    "Counters",
    "DecisionPath",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "build_decision_paths",
    "collect_counters",
    "render_decision_report",
    "run_traced_quickstart",
]
