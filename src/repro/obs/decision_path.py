"""Decision-path reconstruction: from one trace back to *why*.

Aware (Petracca et al.) argues that binding authorization decisions to the
observable user-interaction context is what makes I/O access control
auditable; Overhaul's audit log alone cannot exhibit that binding.  This
module rebuilds it from a trace: for every permission verdict the monitor
produced, it finds the input event whose notification blessed (or failed to
bless) the decision, the netlink hops in between, and the overlay alert the
user saw -- the complete

    input provenance -> notification -> netlink query -> verdict -> alert

chain, rendered as one deterministic report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.obs.tracer import Span, Tracer
from repro.sim.time import format_timestamp, to_seconds

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import Machine


@dataclass
class DecisionPath:
    """One reconstructed end-to-end decision."""

    decision: Span
    #: The notification span for the input that the verdict was measured
    #: against (None when no authentic input ever reached the process).
    blessing: Optional[Span]
    #: netlink hops between the decision and the display manager.
    netlink_hops: List[Span]
    #: Alert activity (request/coalesce/overlay events) tied to the verdict.
    alerts: List[Span]

    @property
    def granted(self) -> bool:
        return bool(self.decision.attrs.get("granted"))

    @property
    def pid(self) -> int:
        return int(self.decision.attrs["pid"])


def build_decision_paths(tracer: Tracer) -> List[DecisionPath]:
    """Reconstruct every verdict's path from the recorded spans."""
    spans = tracer.spans
    paths: List[DecisionPath] = []
    for index, span in enumerate(spans):
        if span.name != "monitor.decide":
            continue
        pid = span.attrs.get("pid")
        # The blessing input: the latest notification for this pid that the
        # kernel recorded at or before the operation time.
        blessing: Optional[Span] = None
        for candidate in spans[:index]:
            if candidate.name != "input.notify":
                continue
            if candidate.attrs.get("pid") != pid or candidate.start > span.start:
                continue
            blessing = candidate
        # netlink hops: the decision's ancestors of category "netlink"
        # (present for display-resource queries; device opens reach the
        # monitor without a userspace round trip).
        hops: List[Span] = []
        by_id = {s.span_id: s for s in spans}
        parent_id = span.parent_id
        while parent_id is not None:
            parent = by_id.get(parent_id)
            if parent is None:
                break
            if parent.category == "netlink":
                hops.append(parent)
            parent_id = parent.parent_id
        # Alert activity caused by this verdict: alert-category events for
        # the same pid recorded before the next decision for any pid.
        alerts: List[Span] = []
        for later in spans[index + 1 :]:
            if later.name == "monitor.decide":
                break
            if later.category == "alert" and later.attrs.get("pid") == pid:
                alerts.append(later)
        paths.append(DecisionPath(span, blessing, hops, alerts))
    return paths


def _verdict_line(path: DecisionPath, delta_us: int) -> str:
    attrs = path.decision.attrs
    age = attrs.get("age")
    reason = attrs.get("reason", "?")
    if age is not None and age >= 0 and age < 2**61:
        age_text = f"last interaction {to_seconds(age):.1f}s ago"
    else:
        age_text = "no interaction on record"
    return f"verdict: {reason} ({age_text}; delta={to_seconds(delta_us):.1f}s)"


def render_decision_report(machine: "Machine") -> str:
    """The human-readable decision-path report for a traced machine.

    Rendering is deterministic: window identifiers are interned in
    first-seen order (``w1``, ``w2``, ...) exactly as in
    :meth:`Tracer.render_tree`.
    """
    tracer = machine.tracer
    normalize = tracer._normalizer()
    delta = (
        machine.overhaul.config.interaction_threshold
        if machine.overhaul is not None
        else 0
    )
    lines: List[str] = []
    for number, path in enumerate(build_decision_paths(tracer), start=1):
        attrs = path.decision.attrs
        outcome = "GRANTED" if path.granted else "DENIED"
        lines.append(
            f"#{number} {format_timestamp(path.decision.start)} PID {path.pid} "
            f"({attrs.get('comm', '?')}) {outcome} {attrs.get('operation', '?')}"
        )
        lines.append(f"    {_verdict_line(path, delta)}")
        if path.blessing is not None:
            blessing = path.blessing.attrs
            lines.append(
                "    input: "
                f"{blessing.get('provenance', '?')} {blessing.get('kind', '?')} "
                f"on window {normalize('window', blessing.get('window'))} at "
                f"{format_timestamp(path.blessing.start)} "
                "-> interaction notification -> netlink 'interaction'"
            )
        else:
            lines.append(
                f"    input: no authentic user input was ever delivered to PID {path.pid}"
            )
        if path.netlink_hops:
            hop_types = ", ".join(
                str(hop.attrs.get("msg_type", "?")) for hop in path.netlink_hops
            )
            lines.append(f"    query: netlink round trip ({hop_types})")
        else:
            lines.append("    query: in-kernel (device mediation, no userspace round trip)")
        if path.alerts:
            for alert in path.alerts:
                if alert.name == "overlay.show":
                    lines.append(
                        f"    alert: overlay banner shown -- {alert.attrs.get('message', '')!r}"
                    )
                elif alert.name == "overlay.coalesce":
                    lines.append("    alert: coalesced with identical on-screen banner")
                elif alert.name == "alert.coalesce":
                    lines.append("    alert: kernel request coalesced (alert still on screen)")
                else:
                    blocked = " (blocked)" if alert.attrs.get("blocked") else ""
                    lines.append(f"    alert: requested over netlink{blocked}")
        else:
            lines.append("    alert: none (not an alerting operation)")
    if not lines:
        return "(no decisions recorded -- is tracing enabled?)"
    return "\n".join(lines)


def run_traced_quickstart() -> "Machine":
    """The quickstart grant/deny scenario on a machine with tracing enabled.

    Used by ``python -m repro trace``, the trace-determinism test, and
    ``examples/trace_decision.py``.  Produces at least one granted and two
    denied device decisions:

    1. background spyware tries the microphone -> denied (no interaction);
    2. the user clicks the recorder -> its open is granted, alert shown;
    3. 2.5 simulated seconds later a re-open is denied (interaction expired).
    """
    from repro.apps import AudioRecorder, Spyware
    from repro.core.system import Machine
    from repro.kernel.errors import OverhaulDenied
    from repro.sim.time import from_seconds

    machine = Machine.with_overhaul(trace=True)
    recorder = AudioRecorder(machine)
    spy = Spyware(machine)
    machine.settle()
    spy.attempt_microphone()
    recorder.click_record()
    recorder.capture_samples(16)
    recorder.stop_recording()
    machine.run_for(from_seconds(2.5))
    try:
        recorder.start_recording()
    except OverhaulDenied:
        pass
    return machine
