"""The cross-layer operation-count registry.

The ROADMAP's "fast as the hardware allows" goal needs *operation counts*
next to latencies: a benchmark round that got faster because it silently did
less work is a regression, not a win.  Every layer already keeps exact local
counters on its hot paths (they predate this module and cost nothing extra);
:func:`collect_counters` gathers them all into one flat, namespaced
snapshot that the Table I harness and the pytest-benchmark suite attach to
their results.

Counter names are ``layer.metric`` strings, stable across releases -- the
analysis tables key on them.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, Mapping, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import Machine

#: Packed-delta wire layout (see :meth:`Counters.pack_deltas`): a ``<I``
#: entry count, then per entry a ``<H`` name length, the UTF-8 name, and a
#: ``<q`` signed delta.  Entries are sorted by name, so equal-content
#: registries pack to identical bytes.
_PACK_COUNT = struct.Struct("<I")
_PACK_ENTRY_HEAD = struct.Struct("<H")
_PACK_VALUE = struct.Struct("<q")


class Counters:
    """A named-integer registry with deterministic iteration order.

    Snapshots, pickles, and merges are all *order-stable*: two registries
    holding the same name/value pairs serialise to identical bytes no
    matter what order the counters were touched in.  Fleet shards rely on
    this -- a merged population table must not depend on which worker
    finished first or which module was imported first.
    """

    def __init__(self, initial: Mapping[str, int] | None = None) -> None:
        self._counts: Dict[str, int] = {}
        if initial:
            for name in sorted(initial):
                self._counts[name] = int(initial[name])

    def inc(self, name: str, amount: int = 1) -> int:
        """Add *amount* to the counter, creating it at zero."""
        value = self._counts.get(name, 0) + amount
        self._counts[name] = value
        return value

    def set(self, name: str, value: int) -> None:
        self._counts[name] = value

    def get(self, name: str) -> int:
        """Current value (0 for never-touched counters)."""
        return self._counts.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        """A sorted copy -- safe to store in benchmark metadata."""
        return dict(sorted(self._counts.items()))

    def merge(self, other: "Counters") -> None:
        """Add *other*'s counts into this registry (commutative on values)."""
        for name in sorted(other._counts):
            self.inc(name, other._counts[name])

    def merge_snapshot(self, snapshot: Mapping[str, int]) -> None:
        """Add a plain name->int mapping in place, no intermediate copies.

        The streaming-fleet merge primitive: value-commutative like
        :meth:`merge`, but takes the dict a shard envelope already holds
        instead of wrapping it in a throwaway registry first.
        """
        counts = self._counts
        for name, value in snapshot.items():
            counts[name] = counts.get(name, 0) + int(value)

    # -- packed deltas (the shared-memory merge path) ----------------------

    def pack_deltas(self) -> bytes:
        """Serialise the registry as a compact struct-packed delta blob.

        Sorted by name, so equal contents pack to identical bytes; the
        fleet result records embed these blobs instead of pickled dicts.
        """
        parts = [_PACK_COUNT.pack(len(self._counts))]
        for name in sorted(self._counts):
            encoded = name.encode("utf-8")
            parts.append(_PACK_ENTRY_HEAD.pack(len(encoded)))
            parts.append(encoded)
            parts.append(_PACK_VALUE.pack(self._counts[name]))
        return b"".join(parts)

    def merge_packed(self, payload: Union[bytes, memoryview], offset: int = 0) -> int:
        """Add a :meth:`pack_deltas` blob in place; returns the end offset.

        This is the fleet hot merge path: one pass over the packed bytes,
        no intermediate dict or registry per shard.
        """
        counts = self._counts
        (entries,) = _PACK_COUNT.unpack_from(payload, offset)
        offset += _PACK_COUNT.size
        for _ in range(entries):
            (name_len,) = _PACK_ENTRY_HEAD.unpack_from(payload, offset)
            offset += _PACK_ENTRY_HEAD.size
            name = bytes(payload[offset:offset + name_len]).decode("utf-8")
            offset += name_len
            (value,) = _PACK_VALUE.unpack_from(payload, offset)
            offset += _PACK_VALUE.size
            counts[name] = counts.get(name, 0) + value
        return offset

    @classmethod
    def merged(
        cls, snapshots: Iterable[Union[Mapping[str, int], bytes, memoryview]]
    ) -> "Counters":
        """Combine many :meth:`snapshot` dicts (or :meth:`pack_deltas`
        blobs) into one registry.

        The fleet aggregation path: each shard ships its machines' counter
        deltas home -- historically as plain dicts, now also as packed
        blobs -- and the driver sums them here, in place, without building
        an intermediate registry or dict copy per shard.  The result is
        independent of the order the snapshots arrive in.
        """
        combined = cls()
        for snapshot in snapshots:
            if isinstance(snapshot, (bytes, bytearray, memoryview)):
                combined.merge_packed(snapshot)
            else:
                combined.merge_snapshot(snapshot)
        return combined

    # Pickle via the sorted snapshot so equal-content registries produce
    # byte-identical payloads regardless of insertion order -- shard
    # checkpoints are compared and cached by content.
    def __getstate__(self) -> Dict[str, int]:
        return self.snapshot()

    def __setstate__(self, state: Dict[str, int]) -> None:
        self._counts = dict(sorted(state.items()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Counters):
            return NotImplemented
        return self.snapshot() == other.snapshot()

    def __len__(self) -> int:
        return len(self._counts)

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._counts.items()))

    def render(self) -> str:
        """Aligned ``name value`` lines, sorted by name."""
        if not self._counts:
            return "(no counters)"
        width = max(len(name) for name in self._counts)
        return "\n".join(f"{name:<{width}}  {value}" for name, value in self)

    def __repr__(self) -> str:
        return f"Counters({len(self._counts)} names)"


def collect_counters(machine: "Machine") -> Counters:
    """Snapshot every layer's exact counters into one registry.

    Reads only -- collection never perturbs the machine, so it is safe to
    call mid-benchmark or between experiment phases.
    """
    counters = Counters()
    kernel = machine.kernel
    xserver = machine.xserver

    # Kernel layer: device mediation, audit, IPC stamp propagation, shm.
    counters.set("device.checks", kernel.device_mediator.checks_performed)
    counters.set("device.denials", kernel.device_mediator.denials)
    counters.set("audit.recorded", kernel.audit.total_recorded)
    counters.set("audit.retained", len(kernel.audit))
    counters.set("stamps.embedded", kernel.tracking.stamps_embedded)
    counters.set("stamps.adopted", kernel.tracking.stamps_adopted)
    counters.set("shm.faults", kernel.shm.total_faults)
    counters.set("shm.accesses", kernel.shm.total_accesses)
    counters.set("shm.rearms", kernel.shm.total_rearms)
    counters.set("netlink.to_kernel", kernel.netlink.messages_to_kernel)
    counters.set("netlink.to_userspace", kernel.netlink.messages_to_userspace)

    # Display-manager layer: input routing, capture gating, overlay.
    counters.set("x.requests", xserver.requests_processed)
    counters.set("x.input_routed", xserver.input_events_routed)
    counters.set("x.input_dropped", xserver.input_events_dropped)
    counters.set("x.captures_served", xserver.screen_captures_served)
    counters.set("x.captures_denied", xserver.screen_captures_denied)
    counters.set("x.sendevent_blocked", xserver.sendevent_blocked)
    counters.set("x.snoops_blocked", xserver.property_snoops_blocked)
    # Damage-rect coalescing is recorded unconditionally (fast and
    # reference machines agree -- the differential suite asserts parity);
    # partial hits are a fast-path-only diagnostic like hits/misses.
    counters.set("damage.rects_coalesced", xserver.damage_rects_coalesced)
    counters.set("compose.partial_hits", xserver.compose_partial_hits)
    counters.set("compose.rects_culled", xserver.compose_rects_culled)
    counters.set("overlay.shown", xserver.overlay.total_shown)
    counters.set("overlay.coalesced", xserver.overlay.total_coalesced)

    # Overhaul layer (present only on protected machines).
    overhaul = machine.overhaul
    if overhaul is not None:
        monitor = overhaul.monitor
        counters.set("monitor.grants", monitor.grant_count)
        counters.set("monitor.denials", monitor.deny_count)
        counters.set("monitor.notifications", monitor.notifications_received)
        counters.set("monitor.queries", monitor.queries_answered)
        counters.set("monitor.alerts_requested", monitor.alerts_requested)
        counters.set("monitor.alerts_coalesced", monitor.alerts_coalesced)
        extension = overhaul.extension
        counters.set("dm.notifications_sent", extension.notifications_sent)
        counters.set("dm.synthetic_filtered", extension.synthetic_inputs_seen)
        counters.set("dm.suppressed", len(extension.suppressed))
        counters.set("dm.queries_sent", extension.queries_sent)
        counters.set("dm.alerts_displayed", extension.alerts_displayed)
        counters.set("dm.channel_failures", extension.channel_failures)

    # Observability layer itself.
    counters.set("obs.spans", machine.tracer.total_spans)
    return counters
