"""Virtual-time-stamped decision-path tracing.

The paper's own evaluation method was log inspection ("we instead verified
correct functionality by inspecting the logs produced by our system",
Sections V-C/V-D).  The coarse append-only audit log answers *what* was
decided; this module answers *why*: every hop of a decision path -- input
event provenance, interaction notification, netlink round trip, permission
monitor verdict, overlay alert -- is recorded as a :class:`Span` with
parent/child links, so one trace reconstructs the full
input -> notification -> query -> verdict -> alert chain end-to-end.

Design constraints:

- **Virtual time only.**  Spans are stamped with the simulation's
  microsecond timebase, never the host clock, so a trace replays
  bit-identically for a given seed (the determinism contract of DESIGN.md
  extends to the observability layer).
- **Zero-cost when disabled.**  The tracer ships disabled; every hot-path
  instrumentation site guards on :attr:`Tracer.enabled` before building any
  attribute dict, and :meth:`Tracer.start` returns ``None`` immediately when
  off, so the baseline and benchmark configurations pay (at most) one
  attribute load and a branch per mediated operation.  A benchmark
  (``benchmarks/test_bench_tracer_overhead.py``) guards this.
- **Deterministic rendering.**  Window/client/VM-area identifiers are
  allocated from process-global counters (like XIDs in a real server), so
  raw values differ across machines built in one process.
  :meth:`Tracer.render_tree` interns them into first-seen-order aliases
  (``w1``, ``c2``, ``a1``) so two same-seed runs render byte-identically.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.sim.time import Timestamp, format_timestamp

#: Attribute keys whose values are process-global identifiers; render-time
#: normalisation replaces them with stable first-seen aliases.
NORMALIZED_ATTRS: Dict[str, str] = {
    "window": "w",
    "client": "c",
    "area": "a",
    "segment": "s",
}


class Span:
    """One traced operation (or, when ``end == start``, a point event)."""

    __slots__ = ("span_id", "parent_id", "name", "category", "start", "end", "attrs")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        category: str,
        start: Timestamp,
        attrs: Dict[str, Any],
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.start = start
        self.end: Timestamp = start
        self.attrs = attrs

    @property
    def duration(self) -> Timestamp:
        return self.end - self.start

    def __repr__(self) -> str:
        return (
            f"Span(id={self.span_id}, name={self.name!r}, "
            f"start={format_timestamp(self.start)}, attrs={self.attrs})"
        )


class Tracer:
    """The span recorder threaded through all four layers.

    One instance is shared by a machine's kernel, X server, permission
    monitor and display-manager extension, so parent/child links cross
    layer boundaries: a ``netlink.to_kernel`` span opened by the display
    manager parents the ``monitor.decide`` span the kernel opens while
    answering the query.
    """

    #: Span retention bound; ``total_spans`` keeps the exact count.
    SPAN_LIMIT = 200_000

    def __init__(
        self,
        now_fn: Optional[Callable[[], Timestamp]] = None,
        enabled: bool = False,
    ) -> None:
        self.enabled = enabled
        self._now_fn: Callable[[], Timestamp] = now_fn if now_fn is not None else (lambda: 0)
        self.spans: List[Span] = []
        self.total_spans = 0
        self._next_span_id = 1
        #: The open-span stack; simulation is synchronous single-threaded,
        #: so lexical nesting *is* causal nesting.  Scheduler-fired timers
        #: (e.g. the shm re-arm) run with an empty stack and become roots.
        self._stack: List[Span] = []

    # -- wiring ---------------------------------------------------------------

    def bind_clock(self, now_fn: Callable[[], Timestamp]) -> None:
        """Attach the virtual clock (machine assembly calls this)."""
        self._now_fn = now_fn

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # -- recording ------------------------------------------------------------

    def start(self, name: str, category: str, **attrs: Any) -> Optional[Span]:
        """Open a span; returns ``None`` when tracing is disabled.

        Hot paths additionally guard on :attr:`enabled` *before* calling so
        the keyword-argument dict is never built in disabled mode.
        """
        if not self.enabled:
            return None
        parent = self._stack[-1] if self._stack else None
        span = Span(
            span_id=self._next_span_id,
            parent_id=None if parent is None else parent.span_id,
            name=name,
            category=category,
            start=self._now_fn(),
            attrs=attrs,
        )
        self._next_span_id += 1
        self._stack.append(span)
        self._store(span)
        return span

    def finish(self, span: Optional[Span], **attrs: Any) -> None:
        """Close a span (no-op on ``None``), merging any final attributes."""
        if span is None:
            return
        span.end = self._now_fn()
        if attrs:
            span.attrs.update(attrs)
        # Pop up to and including the span; tolerate a finish out of order
        # (an exception propagated past an inner finish) by unwinding.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break

    def event(self, name: str, category: str, **attrs: Any) -> Optional[Span]:
        """Record a point event (a zero-duration span) under the open span."""
        if not self.enabled:
            return None
        parent = self._stack[-1] if self._stack else None
        span = Span(
            span_id=self._next_span_id,
            parent_id=None if parent is None else parent.span_id,
            name=name,
            category=category,
            start=self._now_fn(),
            attrs=attrs,
        )
        self._next_span_id += 1
        self._store(span)
        return span

    def _store(self, span: Span) -> None:
        self.spans.append(span)
        self.total_spans += 1
        if len(self.spans) > self.SPAN_LIMIT:
            del self.spans[: -self.SPAN_LIMIT // 2]

    def clear(self) -> None:
        """Drop recorded spans (between experiment phases)."""
        self.spans.clear()
        self._stack.clear()

    # -- queries ---------------------------------------------------------------

    def find(
        self,
        name: Optional[str] = None,
        category: Optional[str] = None,
        **attrs: Any,
    ) -> List[Span]:
        """Spans matching every given criterion, in recording order."""
        result = []
        for span in self.spans:
            if name is not None and span.name != name:
                continue
            if category is not None and span.category != category:
                continue
            if any(span.attrs.get(key) != value for key, value in attrs.items()):
                continue
            result.append(span)
        return result

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def roots(self) -> List[Span]:
        return [s for s in self.spans if s.parent_id is None]

    # -- rendering -------------------------------------------------------------

    def _normalizer(self) -> Callable[[str, Any], str]:
        """Build the id-interning function shared by one render pass."""
        seen: Dict[Tuple[str, Any], str] = {}

        def normalize(key: str, value: Any) -> str:
            prefix = NORMALIZED_ATTRS.get(key)
            if prefix is None:
                return str(value)
            alias = seen.get((prefix, value))
            if alias is None:
                alias = f"{prefix}{len([k for k in seen if k[0] == prefix]) + 1}"
                seen[(prefix, value)] = alias
            return alias

        return normalize

    def render_span(self, span: Span, normalize: Optional[Callable[[str, Any], str]] = None) -> str:
        """One span as a deterministic single line."""
        if normalize is None:
            normalize = self._normalizer()
        rendered_attrs = " ".join(
            f"{key}={normalize(key, value)}" for key, value in sorted(span.attrs.items())
        )
        duration = f" +{span.duration}us" if span.end != span.start else ""
        body = f"{format_timestamp(span.start)}{duration} {span.name}"
        return f"{body} {rendered_attrs}".rstrip()

    def render_tree(self) -> str:
        """The whole span forest as indented, deterministic text.

        This is the artifact the trace-consistency test asserts is
        byte-identical across same-seed runs.
        """
        normalize = self._normalizer()
        by_parent: Dict[Optional[int], List[Span]] = {}
        retained = {span.span_id for span in self.spans}
        for span in self.spans:
            parent = span.parent_id if span.parent_id in retained else None
            by_parent.setdefault(parent, []).append(span)

        def walk(parent_id: Optional[int], depth: int) -> Iterator[str]:
            for span in by_parent.get(parent_id, []):
                yield "  " * depth + self.render_span(span, normalize)
                yield from walk(span.span_id, depth + 1)

        return "\n".join(walk(None, 0))

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, spans={len(self.spans)}, total={self.total_spans})"


#: Shared disabled tracer for subsystems constructed standalone (unit
#: tests build a ``SharedMemorySubsystem`` or ``OverlayManager`` directly);
#: machine assembly replaces it with the machine's own tracer.
NULL_TRACER = Tracer()
