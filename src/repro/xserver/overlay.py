"""The trusted output path: overlay alerts.

Section IV-A ("Trusted output"): alerts are "rendered on top of all other
windows, and cannot be blocked, obscured, or manipulated by other X
clients... displayed for a few seconds at the top of the screen... the
alerts make use of a visual shared secret set by the user of the system to
prevent malicious applications from forging fake alerts" (Figure 5 shows the
authors' cat image as the secret).

The overlay is *not* a window: it lives outside the stacking order and is
composited last, so no client request can raise anything above it.  Clients
also have no API that reaches this module -- alerts can only be triggered by
the display manager acting on a kernel netlink request, which is what makes
the path trusted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.obs.tracer import NULL_TRACER
from repro.sim.time import Timestamp, from_seconds

#: The paper displays alerts "for a few seconds"; we default to three.
DEFAULT_ALERT_DURATION: Timestamp = from_seconds(3.0)

#: Sentinel expiry for "no visible alert": the empty banner stays valid
#: until the next show_alert bumps the overlay generation.
_FAR_FUTURE = float("inf")


@dataclass(frozen=True)
class Alert:
    """One displayed alert."""

    message: str
    operation: str  # e.g. "microphone:/dev/mic0"
    pid: int
    comm: str
    shown_at: Timestamp
    expires_at: Timestamp
    #: The user's visual shared secret, attached by the overlay manager.
    #: Forged alert lookalikes drawn by ordinary clients cannot carry it.
    shared_secret: str

    def visible_at(self, now: Timestamp) -> bool:
        return self.shown_at <= now < self.expires_at


class OverlayManager:
    """Owns the alert layer above the window stack."""

    #: History retention bound; counters keep exact totals beyond it.
    HISTORY_LIMIT = 100_000

    def __init__(self, shared_secret: str = "visual-secret:cat.png") -> None:
        #: Set by the user at install time (Figure 5's cat image).
        self.shared_secret = shared_secret
        self.history: List[Alert] = []
        self.alert_duration: Timestamp = DEFAULT_ALERT_DURATION
        self.total_shown = 0
        #: Show requests absorbed by an identical on-screen alert.
        self.total_coalesced = 0
        #: Machine assembly swaps in the shared decision-path tracer.
        self.tracer = NULL_TRACER
        #: Only alerts that may still be on screen; pruned on query so the
        #: composition path stays O(visible), not O(history).
        self._active: List[Alert] = []
        #: Alert-set generation: bumped whenever a *new* alert appears on
        #: screen (coalesced repeats change nothing visible, so they do not
        #: bump it).  Together with the earliest expiry this keys the
        #: banner cache below.
        self.generation = 0
        #: Hot-path switch mirroring ``OverhaulConfig.fast_display``: cache
        #: the rendered banner for the window of time during which the
        #: visible-alert set cannot change -- from the compute instant until
        #: the earliest expiry -- so an active alert does not defeat the
        #: composition cache.  Byte-identical to the uncached render.
        self.fast_banner_cache = True
        self._banner_cache: Optional[tuple] = None  # (gen, from, until, bytes)
        #: Band epoch: bumped exactly when the rendered alert band differs
        #: from the previously returned one (appearance, expiry, or a
        #: changed alert set).  The banner composes as its *own region* of
        #: the screen: the server's incremental compose compares this epoch
        #: to decide whether the band needs re-splicing, independent of
        #: window damage.
        self.band_epoch = 0
        self._last_band: bytes = b""

    def show_alert(
        self,
        message: str,
        operation: str,
        pid: int,
        comm: str,
        now: Timestamp,
        duration: Optional[Timestamp] = None,
    ) -> Alert:
        """Display an alert; returns the (immutable) alert record.

        Identical alerts coalesce: if an alert with the same (pid,
        operation, message) is still on screen, it is returned unchanged
        rather than stacked -- the user sees one banner, not a flicker of
        duplicates.
        """
        lifetime = duration if duration is not None else self.alert_duration
        for alert in self.visible_alerts(now):
            if alert.pid == pid and alert.operation == operation and alert.message == message:
                self.total_coalesced += 1
                if self.tracer.enabled:
                    self.tracer.event(
                        "overlay.coalesce", "alert", pid=pid, operation=operation
                    )
                return alert
        alert = Alert(
            message=message,
            operation=operation,
            pid=pid,
            comm=comm,
            shown_at=now,
            expires_at=now + lifetime,
            shared_secret=self.shared_secret,
        )
        self.history.append(alert)
        if len(self.history) > self.HISTORY_LIMIT:
            del self.history[: -self.HISTORY_LIMIT // 2]
        self._active.append(alert)
        self.generation += 1
        self.total_shown += 1
        if self.tracer.enabled:
            self.tracer.event(
                "overlay.show", "alert", pid=pid, operation=operation, message=message
            )
        return alert

    def visible_alerts(self, now: Timestamp) -> List[Alert]:
        """Alerts currently on screen (prunes the expired ones)."""
        self._active = [alert for alert in self._active if now < alert.expires_at]
        return [alert for alert in self._active if alert.visible_at(now)]

    def is_alert_visible(self, now: Timestamp) -> bool:
        return bool(self.visible_alerts(now))

    def alerts_for_pid(self, pid: int) -> List[Alert]:
        """Every alert ever shown about *pid* (experiment queries)."""
        return [alert for alert in self.history if alert.pid == pid]

    def banner_bytes(self, now: Timestamp) -> bytes:
        """The rendered alert band, or b'' when nothing is on screen.

        The screen-composition path appends this to its part list so even a
        *granted* capture shows the alert band -- the overlay genuinely
        sits above everything, including capture output -- without an extra
        full-framebuffer copy.

        With :attr:`fast_banner_cache` on (and the tracer off -- traced
        runs take the reference path like every other fast path), the
        render is memoized for the
        interval over which the visible-alert set provably cannot change:
        a cached band is valid while (a) no new alert has been shown (the
        generation matches) and (b) ``now`` is still before the earliest
        expiry captured at compute time.  Queries that jump backwards in
        time fall through to a fresh render, so the cache never changes
        what a caller observes.
        """
        if self.fast_banner_cache and not self.tracer.enabled:
            cached = self._banner_cache
            if (
                cached is not None
                and cached[0] == self.generation
                and cached[1] <= now < cached[2]
            ):
                # Provably unchanged interval: the band epoch cannot have
                # moved, so skip the comparison entirely.
                return cached[3]
            banner = self._render_banner(now)
            valid_until = min(
                (alert.expires_at for alert in self._active), default=_FAR_FUTURE
            )
            self._banner_cache = (self.generation, now, valid_until, banner)
        else:
            banner = self._render_banner(now)
        if banner != self._last_band:
            self._last_band = banner
            self.band_epoch += 1
        return banner

    def _render_banner(self, now: Timestamp) -> bytes:
        """The uncached reference render of the alert band."""
        visible = self.visible_alerts(now)
        if not visible:
            return b""
        return "|".join(
            f"ALERT[{alert.comm}:{alert.operation}:{alert.shared_secret}]" for alert in visible
        ).encode()

    def compose_over(self, screen_bytes: bytes, now: Timestamp) -> bytes:
        """Composite the alert layer over a captured screen image."""
        banner = self.banner_bytes(now)
        return banner + screen_bytes if banner else screen_bytes
