"""X protocol error hierarchy.

Mirrors the X11 error names the paper's modifications surface -- most
importantly ``BadAccess``, which is what Overhaul's modified server returns
when a selection operation fails its permission query ("the client is sent
back a *bad access* error", Section IV-A).
"""

from __future__ import annotations


class XError(Exception):
    """Base class for X protocol errors."""

    x_error_name = "Unknown"

    def __str__(self) -> str:
        message = super().__str__()
        return f"[{self.x_error_name}] {message}" if message else self.x_error_name


class BadAccess(XError):
    """Access to the resource was denied (Overhaul's denial surface)."""

    x_error_name = "BadAccess"


class BadWindow(XError):
    """The window id does not name a valid window."""

    x_error_name = "BadWindow"


class BadDrawable(XError):
    """The drawable id names neither a window nor a pixmap."""

    x_error_name = "BadDrawable"


class BadAtom(XError):
    """An invalid atom (selection/property name) was supplied."""

    x_error_name = "BadAtom"


class BadMatch(XError):
    """Request parameters are inconsistent."""

    x_error_name = "BadMatch"


class BadValue(XError):
    """A numeric argument is out of range."""

    x_error_name = "BadValue"


class BadClient(XError):
    """The client connection is closed or otherwise unusable."""

    x_error_name = "BadClient"
