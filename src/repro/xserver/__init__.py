"""Simulated X Window System for the Overhaul reproduction.

A protocol-level model of the X.Org pieces the paper modifies (Section
IV-A): client connections with kernel-verified PID bindings, windows with
visibility tracking, input dispatch with event provenance, the full ICCCM
selection (clipboard) protocol, display-content requests (GetImage,
XShmGetImage, CopyArea, CopyPlane), the XTest extension, SendEvent, and the
trusted overlay output path.

Entry point: :class:`repro.xserver.XServer`.  Without an Overhaul extension
installed, the server behaves as stock X11 -- synthetic input is
indistinguishable downstream, selections are served unconditionally, and any
client can read the framebuffer.
"""

from repro.xserver.client import XClient
from repro.xserver.errors import (
    BadAccess,
    BadAtom,
    BadClient,
    BadDrawable,
    BadMatch,
    BadValue,
    BadWindow,
    XError,
)
from repro.xserver.events import EventKind, EventProvenance, XEvent
from repro.xserver.input_drivers import (
    KEYCODE_C,
    KEYCODE_ENTER,
    KEYCODE_PRINTSCREEN,
    KEYCODE_V,
    MODIFIER_CTRL,
    HardwareKeyboard,
    HardwareMouse,
)
from repro.xserver.overlay import Alert, OverlayManager
from repro.xserver.selection import (
    CLIPBOARD,
    PRIMARY,
    PendingTransfer,
    Selection,
    SelectionSubsystem,
    TransferState,
)
from repro.xserver.server import OverhaulXExtension, XServer
from repro.xserver.window import Drawable, Geometry, Pixmap, Rect, StackingOrder, Window

__all__ = [
    "Alert",
    "BadAccess",
    "BadAtom",
    "BadClient",
    "BadDrawable",
    "BadMatch",
    "BadValue",
    "BadWindow",
    "CLIPBOARD",
    "Drawable",
    "EventKind",
    "EventProvenance",
    "Geometry",
    "HardwareKeyboard",
    "HardwareMouse",
    "KEYCODE_C",
    "KEYCODE_ENTER",
    "KEYCODE_PRINTSCREEN",
    "KEYCODE_V",
    "MODIFIER_CTRL",
    "OverhaulXExtension",
    "OverlayManager",
    "PRIMARY",
    "PendingTransfer",
    "Pixmap",
    "Rect",
    "Selection",
    "SelectionSubsystem",
    "StackingOrder",
    "TransferState",
    "Window",
    "XClient",
    "XError",
    "XEvent",
    "XServer",
]
