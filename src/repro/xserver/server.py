"""The simulated X server: clients, windows, input routing, selections,
screen capture, and the Overhaul hook points.

The design mirrors Section IV-A: an X.Org-like server responsible for

- receiving low-level input from device drivers and dispatching it to
  application windows (with provenance tagging -- the Overhaul patch);
- the ICCCM selection protocol of Figure 6 (with the Overhaul permission
  queries in steps 2 and 6, and the SendEvent / property-snooping
  interposition described in the text);
- display-content access via ``GetImage``, ``XShmGetImage``, ``CopyArea``
  and ``CopyPlane`` (with the same-owner fast path for the copy requests);
- the trusted overlay output path.

All Overhaul behaviour is reached through ``self.overhaul`` -- an
optional extension object installed by
:class:`repro.core.system.OverhaulSystem`.  With it absent, the server is a
faithful *unmodified* X server: synthetic events pass unexamined, selection
requests are served unconditionally, any client may capture the screen.
The baseline configurations in Table I and the unprotected machine of the
21-day study run exactly this code with ``overhaul is None``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Protocol, Set

from repro.obs.tracer import Tracer
from repro.sim.scheduler import EventScheduler
from repro.sim.time import NEVER, Timestamp
from repro.xserver.client import XClient
from repro.xserver.errors import (
    BadAccess,
    BadAtom,
    BadDrawable,
    BadMatch,
    BadWindow,
)
from repro.xserver.events import EventKind, EventProvenance, XEvent
from repro.xserver.overlay import OverlayManager
from repro.xserver.selection import (
    PendingTransfer,
    Selection,
    SelectionSubsystem,
    TransferState,
)

#: Request labels for the two copy requests sharing one implementation.
_COPY_LABELS = {"copy-area": "CopyArea", "copy-plane": "CopyPlane"}
from repro.xserver.framebuffer import NUMPY_AVAILABLE, Framebuffer
from repro.xserver.window import Drawable, Geometry, Pixmap, Rect, StackingOrder, Window

#: PROPERTY_NOTIFY payload-pool bound (LRU-evicted, not cleared wholesale).
_PROP_NOTIFY_POOL_LIMIT = 256


class _ComposeCache:
    """One composed 2D frame plus the structure needed to patch it in place.

    ``windows`` is the stacking snapshot bottom-to-top and ``index`` maps
    drawable id -> stack position, so a dirty window found in the damage
    journal resolves in O(1).  ``bounds[i]`` is window i's geometry
    clipped to the screen -- None for transparent or fully-offscreen
    windows, neither of which paints a cell.  ``occluded``/``blockers``
    are *lazy* per-window occlusion facts, valid for the cache's whole
    lifetime because geometry is immutable and every restack bumps the
    stacking generation: ``occluded[i]`` is True when one opaque window
    above fully covers window i (its damage can never reach the screen,
    so the patcher culls it in O(1)); ``blockers[i]`` lists the opaque
    windows above that overlap it and must be re-blitted over any patch.

    ``fb`` is the live framebuffer; ``image`` the cached
    ``snapshot + banner`` frame, valid while ``fb.epoch == fb_epoch`` and
    the overlay band epoch matches.  ``render_key`` serves the
    non-incremental fallback, which keys whole frames exactly as PR-4
    did.
    """

    __slots__ = (
        "generation",
        "windows",
        "index",
        "bounds",
        "occluded",
        "blockers",
        "render_key",
        "fb",
        "fb_epoch",
        "banner",
        "band_epoch",
        "image",
    )

    def __init__(
        self,
        generation: int,
        windows: list,
        index: dict,
        bounds: list,
        render_key: tuple,
        fb,
        banner: bytes,
        band_epoch: int,
        image: bytes,
    ) -> None:
        self.generation = generation
        self.windows = windows
        self.index = index
        self.bounds = bounds
        self.occluded: list = [None] * len(windows)
        self.blockers: list = [None] * len(windows)
        self.render_key = render_key
        self.fb = fb
        self.fb_epoch = fb.epoch
        self.banner = banner
        self.band_epoch = band_epoch
        self.image = image


class OverhaulXExtension(Protocol):
    """The interface the Overhaul display-manager patch implements.

    Defined here (not in ``repro.core``) so the server depends only on the
    shape, never on Overhaul itself -- the layering the paper needs for
    "the same server binary, patched vs unpatched" comparisons.
    """

    def on_authentic_input(self, client: XClient, window: Window, event: XEvent) -> None:
        """An authentic hardware input event was routed to *client*."""

    def on_synthetic_input(self, client: XClient, window: Optional[Window], event: XEvent) -> None:
        """A synthetic input event was detected during dispatch."""

    def authorize_selection_op(self, client: XClient, operation: str, now: Timestamp) -> bool:
        """Permission query for 'copy' / 'paste' (Figure 2 steps 5-6)."""

    def authorize_screen_capture(self, client: XClient, now: Timestamp) -> bool:
        """Permission query for display-content access."""


class XServer:
    """The display manager."""

    ROOT_CLIENT_ID = 0

    def __init__(
        self,
        scheduler: EventScheduler,
        width: int = 1920,
        height: int = 1080,
        shared_secret: str = "visual-secret:cat.png",
        tracer: Optional[Tracer] = None,
    ) -> None:
        self._scheduler = scheduler
        self.width = width
        self.height = height
        #: The (machine-shared) decision-path tracer; disabled by default.
        self.tracer = tracer if tracer is not None else Tracer(lambda: scheduler.now)
        self.overlay = OverlayManager(shared_secret)
        self.overlay.tracer = self.tracer
        self.selections = SelectionSubsystem()
        self.stacking = StackingOrder()

        #: Installed by OverhaulSystem; None = unmodified server.
        self.overhaul: Optional[OverhaulXExtension] = None
        #: Prompt-mode click interceptor (repro.core.prompt_mode); consulted
        #: only on the *hardware* button path, so synthetic input can never
        #: answer a prompt.
        self.prompt_interceptor: Optional[object] = None

        self._clients: Dict[int, XClient] = {}
        self._windows: Dict[int, Window] = {}
        self._pixmaps: Dict[int, Pixmap] = {}
        self._input_drivers: Set[int] = set()  # id() tokens of attached drivers
        self._focus_window_id: Optional[int] = None

        # The root window: owned by the server, always mapped, covers the
        # screen.  GetImage on it captures the whole display.
        self.root_window = Window(
            owner_client_id=self.ROOT_CLIENT_ID,
            geometry=Geometry(0, 0, width, height),
            title="root",
        )
        self.root_window.mapped = True
        self.root_window.visible_since = scheduler.now
        self._windows[self.root_window.drawable_id] = self.root_window

        # Diagnostics / benchmark counters.
        self.requests_processed = 0
        self.input_events_routed = 0
        self.input_events_dropped = 0
        self.screen_captures_served = 0
        self.screen_captures_denied = 0
        self.sendevent_blocked = 0
        self.property_snoops_blocked = 0
        #: Per-request-type copy counters (CopyPlane is not CopyArea).
        self.copy_requests = {"copy-area": 0, "copy-plane": 0}
        #: Fast-path PROPERTY_NOTIFY payload pool, keyed (name, deleted);
        #: LRU-bounded so a long tail of distinct properties cannot evict
        #: the hot pairs wholesale.
        self._prop_notify_payloads: "OrderedDict[tuple, dict]" = OrderedDict()

        # -- damage-tracked display pipeline (see docs/performance.md) -----
        #: Hot-path switch mirroring ``OverhaulConfig.fast_display``; the
        #: fast path additionally disables itself while tracing is on or a
        #: prompt band is installed (those need the reference path).
        self.fast_display = True
        #: numpy-vectorized framebuffer blits (``fast_numpy_blit``); only
        #: the fast display path consults it (tracing already forces the
        #: reference composition), and it degrades silently to the
        #: pure-python row loop when numpy is not importable.
        self.fast_numpy_blit = True
        #: Incremental-composition switch: with it on (the default), a
        #: cached frame whose stacking order is unchanged is *patched* in
        #: place from the damage journal; with it off the fast path keys
        #: the whole frame on (generation, render_key, banner) and fully
        #: recomposes on any damage -- the PR-4 behaviour, kept as the
        #: measured fallback the `compose_partial` benchmark compares
        #: against.
        self.incremental_compose = True
        #: One composed frame plus patch structure (`_ComposeCache`).
        self._compose_cache: Optional[_ComposeCache] = None
        #: Damage journal: drawables whose content or render state changed
        #: since the last fast compose, keyed by drawable id.  Fed by the
        #: per-drawable ``damage_sink`` hook, so direct draws that bypass
        #: the request layer still land here.  Recording is unconditional
        #: (reference machines pay one dict store) so the journal is
        #: complete even across traced interludes.
        self._damage_journal: Dict[int, Drawable] = {}
        #: Stable bound-method identity for sink attachment checks.
        self._damage_sink = self._record_damage
        #: The merge-counter cell shared with every drawable (a one-element
        #: list): draws add their coalescing merges here directly, so the
        #: accounting survives even when journal registration is skipped
        #: for composer-proven-invisible windows.
        self._coalesce_cell = [0]
        self.root_window.damage_sink = self._damage_sink
        self.root_window._coalesce_cell = self._coalesce_cell
        #: Composition-cache effectiveness (diagnostics; not part of the
        #: equivalence contract -- the reference path never caches).
        self.compose_cache_hits = 0
        self.compose_cache_misses = 0
        #: Partial recompositions: the cached frame was patched in place
        #: (dirty rects blitted, culled, and/or the banner region rebuilt)
        #: instead of recomposed.  Fast-path-only, like the hit/miss
        #: counters.
        self.compose_partial_hits = 0
        #: Dirty rects proven invisible (their window transparent,
        #: offscreen, or fully covered by an opaque window above) and
        #: dropped without touching a single framebuffer byte.
        #: Fast-path-only diagnostics, like the partial counter.
        self.compose_rects_culled = 0
    @property
    def damage_rects_coalesced(self) -> int:
        """Damage rects merged while folding draws into each drawable's
        coalescing buffer.

        The buffer is a pure function of the draw stream (composition and
        snapshot refreshes never touch it), so fast and reference
        machines -- which see identical draws -- report identical counts;
        the differential suite asserts it.  Backed by a cell the drawables
        increment directly, keeping the accounting alive even for windows
        whose journal registration the composer has culled.
        """
        return self._coalesce_cell[0]

    @damage_rects_coalesced.setter
    def damage_rects_coalesced(self, value: int) -> None:
        self._coalesce_cell[0] = value

    # -- time -----------------------------------------------------------------

    @property
    def now(self) -> Timestamp:
        return self._scheduler.now

    # -- fast-path gate ---------------------------------------------------------

    def _fast_display_active(self) -> bool:
        """True when the damage-tracked display pipeline may be used.

        Mirrors the PR-3 hot-path switches: the flag itself comes from
        ``OverhaulConfig.fast_display`` (cleared for prompt-mode/gray-box
        configurations by the system assembly), and tracing forces the
        reference path at call time so span trees stay complete.
        """
        return (
            self.fast_display
            and not self.tracer.enabled
            and self.prompt_interceptor is None
        )

    # -- connections ---------------------------------------------------------------

    def connect(self, task: object) -> XClient:
        """Accept a client connection from a kernel task.

        The PID binding is taken from the task object itself -- the
        simulation's equivalent of resolving the client socket's peer PID
        from the kernel, which the paper calls an unforgeable binding.
        """
        client = XClient(pid=task.pid, comm=task.comm)  # type: ignore[attr-defined]
        self._clients[client.client_id] = client
        return client

    def disconnect(self, client: XClient) -> None:
        """Drop a client: unmap and forget its windows, clear selections."""
        client.disconnect()
        for window in [w for w in self._windows.values() if w.owner_client_id == client.client_id]:
            self.stacking.remove(window)
            del self._windows[window.drawable_id]
        for name in [
            s.name
            for s in (self.selections.owner_of(n) for n in ("CLIPBOARD", "PRIMARY"))
            if s is not None and s.owner_client_id == client.client_id
        ]:
            self.selections.clear_owner(name)
        self._clients.pop(client.client_id, None)

    def client_by_id(self, client_id: int) -> Optional[XClient]:
        return self._clients.get(client_id)

    # -- windows -----------------------------------------------------------------

    def create_window(
        self,
        client: XClient,
        geometry: Geometry,
        title: str = "",
        transparent: bool = False,
    ) -> Window:
        """CreateWindow."""
        self.requests_processed += 1
        window = Window(client.client_id, geometry, title)
        window.transparent = transparent
        window.damage_sink = self._damage_sink
        window._coalesce_cell = self._coalesce_cell
        self._windows[window.drawable_id] = window
        return window

    def create_pixmap(self, client: XClient) -> Pixmap:
        """CreatePixmap: an offscreen drawable owned by *client*."""
        self.requests_processed += 1
        pixmap = Pixmap(client.client_id)
        pixmap.damage_sink = self._damage_sink
        pixmap._coalesce_cell = self._coalesce_cell
        self._pixmaps[pixmap.drawable_id] = pixmap
        return pixmap

    def _window(self, window_id: int) -> Window:
        window = self._windows.get(window_id)
        if window is None:
            raise BadWindow(f"no window {window_id:#x}")
        return window

    def _drawable(self, drawable_id: int) -> Drawable:
        drawable: Optional[Drawable] = self._windows.get(drawable_id)
        if drawable is None:
            drawable = self._pixmaps.get(drawable_id)
        if drawable is None:
            raise BadDrawable(f"no drawable {drawable_id:#x}")
        return drawable

    def _require_owner(self, client: XClient, window: Window) -> None:
        if window.owner_client_id != client.client_id:
            raise BadMatch(
                f"client {client.client_id} does not own window {window.drawable_id:#x}"
            )

    def map_window(self, client: XClient, window_id: int) -> None:
        """MapWindow: the window becomes visible, on top of the stack."""
        self.requests_processed += 1
        window = self._window(window_id)
        self._require_owner(client, window)
        if not window.mapped:
            window.mapped = True
            window.visible_since = self.now
            window.note_state_change()
            self.stacking.add_top(window)

    def unmap_window(self, client: XClient, window_id: int) -> None:
        """UnmapWindow."""
        self.requests_processed += 1
        window = self._window(window_id)
        self._require_owner(client, window)
        if window.mapped:
            window.mapped = False
            window.visible_since = NEVER
            window.note_state_change()
            self.stacking.remove(window)

    def raise_window(self, client: XClient, window_id: int) -> None:
        """RaiseWindow (ConfigureWindow stacking change).

        Note: raising does *not* reset ``visible_since`` -- only map/unmap
        cycles do.  A previously-invisible window popped over others is
        exactly the clickjacking pattern the visibility threshold defeats.
        """
        self.requests_processed += 1
        window = self._window(window_id)
        self._require_owner(client, window)
        window.note_state_change()
        self.stacking.raise_window(window)

    def draw(self, client: XClient, drawable_id: int, data: bytes) -> None:
        """A paint request: replace drawable content."""
        self.requests_processed += 1
        drawable = self._drawable(drawable_id)
        if drawable.owner_client_id != client.client_id:
            raise BadMatch(f"cannot draw on foreign drawable {drawable_id:#x}")
        drawable.draw(data)

    def draw_rect(
        self,
        client: XClient,
        drawable_id: int,
        x: int,
        y: int,
        width: int,
        height: int,
        data: bytes,
    ) -> Optional[Rect]:
        """A region paint request (PolyFillRectangle-style partial redraw).

        The rect is clipped to the drawable; zero-area or fully clipped
        rects are no-ops.  Damage is recorded at rect granularity, so the
        composition cache patches only this drawable's band instead of
        rebuilding the frame.  Returns the clipped rect that was painted
        (None when the request clipped to nothing).
        """
        self.requests_processed += 1
        drawable = self._drawable(drawable_id)
        if drawable.owner_client_id != client.client_id:
            raise BadMatch(f"cannot draw on foreign drawable {drawable_id:#x}")
        return drawable.draw_rect(x, y, width, height, data)

    def set_input_focus(self, client: XClient, window_id: int) -> None:
        """SetInputFocus: key events are routed to this window."""
        self.requests_processed += 1
        self._window(window_id)  # validate
        self._focus_window_id = window_id

    @property
    def focus_window(self) -> Optional[Window]:
        if self._focus_window_id is None:
            return None
        return self._windows.get(self._focus_window_id)

    # -- input dispatch ---------------------------------------------------------------

    def attach_input_driver(self, driver: object) -> int:
        """Attach a hardware input driver; returns its injection token.

        Only machine assembly code calls this; applications hold XClient
        handles, never driver tokens, so they cannot inject HARDWARE
        provenance events.
        """
        token = id(driver)
        self._input_drivers.add(token)
        return token

    def _check_driver(self, token: int) -> None:
        if token not in self._input_drivers:
            raise BadAccess("input injection requires an attached hardware driver")

    def inject_hardware_key(
        self, token: int, kind: EventKind, keycode: int, modifiers: int = 0
    ) -> None:
        """A key event from a physical keyboard, routed to the focus window."""
        self._check_driver(token)
        event = XEvent(
            kind=kind,
            timestamp=self.now,
            provenance=EventProvenance.HARDWARE,
            detail=keycode,
            payload={"modifiers": modifiers},
        )
        self._route_input(self.focus_window, event)

    def inject_hardware_button(
        self, token: int, kind: EventKind, x: int, y: int, button: int
    ) -> None:
        """A button event from a physical mouse, routed by position.

        The prompt band (when prompt mode is active) gets first claim on
        hardware presses -- it lives above the window stack, and this is
        the only code path that can reach it.
        """
        self._check_driver(token)
        if (
            self.prompt_interceptor is not None
            and kind is EventKind.BUTTON_PRESS
            and self.prompt_interceptor.intercept_hardware_click(x, y, self.now)  # type: ignore[attr-defined]
        ):
            return
        event = XEvent(
            kind=kind,
            timestamp=self.now,
            provenance=EventProvenance.HARDWARE,
            detail=button,
            x=x,
            y=y,
        )
        self._route_input(self.stacking.topmost_at(x, y), event)

    def inject_hardware_motion(self, token: int, x: int, y: int) -> None:
        """Pointer motion (no interaction notification is generated for
        motion alone; only presses/releases/keys count as interaction)."""
        self._check_driver(token)
        event = XEvent(
            kind=EventKind.MOTION,
            timestamp=self.now,
            provenance=EventProvenance.HARDWARE,
            x=x,
            y=y,
        )
        self._route_input(self.stacking.topmost_at(x, y), event)

    def _route_input(self, window: Optional[Window], event: XEvent) -> None:
        """Deliver an input event to the owner of *window*.

        This is the enhanced input-dispatching mechanism: every event
        passes the provenance check here, and authentic events reaching a
        legitimately-visible window trigger the Overhaul hook that sends
        the interaction notification to the kernel (Figures 1-2, step 2).
        """
        tracer = self.tracer
        if window is None:
            self.input_events_dropped += 1
            if tracer.enabled:
                tracer.event(
                    "input.drop", "input", kind=event.kind.value,
                    provenance=event.provenance.name,
                )
            return
        client = self._clients.get(window.owner_client_id)
        if client is None or not client.connected:
            self.input_events_dropped += 1
            return
        event.window_id = window.drawable_id
        span = None
        if tracer.enabled:
            # The provenance filter is the root of every trusted-input
            # decision path: notification spans nest under it.
            span = tracer.start(
                "input.route",
                "input",
                kind=event.kind.value,
                provenance=event.provenance.name,
                window=window.drawable_id,
                pid=client.pid,
            )
        try:
            if self.overhaul is not None:
                if event.is_authentic_input:
                    self.overhaul.on_authentic_input(client, window, event)
                elif event.kind.is_input:
                    self.overhaul.on_synthetic_input(client, window, event)
            self.input_events_routed += 1
            client.deliver(event)
        finally:
            if span is not None:
                tracer.finish(span)

    # -- SendEvent ---------------------------------------------------------------

    def send_event(
        self,
        sender: XClient,
        window_id: int,
        kind: EventKind,
        detail: Optional[int] = None,
        payload: Optional[dict] = None,
    ) -> None:
        """The core-protocol SendEvent request.

        Events minted here always carry SEND_EVENT provenance (the protocol
        forces the synthetic flag).  Under Overhaul, SendEvent is also the
        interposition point for selection-protocol bypass attacks:

        - ``SelectionRequest`` via SendEvent would let a malicious client
          solicit the clipboard data directly from the owner; blocked.
        - ``SelectionNotify`` via SendEvent is *legitimate* exactly once
          per transfer -- when the selection owner completes step (9) of
          Figure 6 for a transfer the server knows about; anything else is
          blocked.
        """
        self.requests_processed += 1
        window = self._windows.get(window_id)
        if window is None:
            raise BadWindow(f"no window {window_id:#x}")
        target_client = self._clients.get(window.owner_client_id)
        if target_client is None:
            raise BadWindow(f"window {window_id:#x} has no connected owner")

        if kind is EventKind.SELECTION_NOTIFY:
            # Step (9) bookkeeping happens on any server; only the
            # *enforcement* of a matching transfer is the Overhaul patch.
            transfer = self.selections.find_transfer(
                owner_client_id=sender.client_id,
                requestor_window_id=window_id,
            )
            if transfer is not None and transfer.state is TransferState.DATA_STORED:
                self.selections.mark_notified(transfer)
                if self.tracer.enabled:
                    self.tracer.event(
                        "selection.notify", "selection",
                        selection=transfer.selection_name, window=window_id,
                    )
            elif self.overhaul is not None:
                self.sendevent_blocked += 1
                raise BadAccess(
                    "SendEvent(SelectionNotify) does not match a pending "
                    "clipboard transfer; blocked"
                )
        elif kind in (EventKind.SELECTION_REQUEST, EventKind.SELECTION_CLEAR):
            if self.overhaul is not None:
                self.sendevent_blocked += 1
                raise BadAccess(
                    f"SendEvent({kind.value}) would break the selection "
                    "protocol; blocked"
                )

        if payload is not None and self._fast_display_active():
            # Zero-copy handoff: callers hand the payload over; the
            # reference path keeps the defensive copy.
            event_payload = payload
        else:
            event_payload = dict(payload or {})
        event = XEvent(
            kind=kind,
            timestamp=self._scheduler.now,
            provenance=EventProvenance.SEND_EVENT,
            window_id=window_id,
            detail=detail,
            payload=event_payload,
        )
        if event.kind.is_input:
            # Synthetic input: delivered (GUI testing keeps working) but the
            # dispatch hook sees it as synthetic, so it can never produce an
            # interaction notification.
            self._route_input(window, event)
        else:
            target_client.deliver(event)

    # -- XTest extension ----------------------------------------------------------

    def xtest_fake_input(
        self,
        client: XClient,
        kind: EventKind,
        detail: Optional[int] = None,
        x: int = 0,
        y: int = 0,
    ) -> None:
        """XTestFakeInput: inject an input event as the GUI-testing
        extension does.

        No synthetic flag exists for XTest -- which is why the paper had to
        add provenance tagging.  The event is routed exactly like hardware
        input, but with XTEST provenance, so the Overhaul dispatch hook
        never treats it as user interaction.
        """
        self.requests_processed += 1
        if not kind.is_input:
            raise BadMatch(f"XTestFakeInput only injects input events, not {kind.value}")
        event = XEvent(
            kind=kind,
            timestamp=self.now,
            provenance=EventProvenance.XTEST,
            detail=detail,
            x=x,
            y=y,
        )
        if kind in (EventKind.KEY_PRESS, EventKind.KEY_RELEASE):
            self._route_input(self.focus_window, event)
        else:
            self._route_input(self.stacking.topmost_at(x, y), event)

    # -- selections (Figure 6) ---------------------------------------------------------

    def set_selection_owner(
        self, client: XClient, selection_name: str, window_id: int
    ) -> None:
        """SetSelectionOwner -- step (2); Overhaul queries permission first."""
        self.requests_processed += 1
        if not selection_name:
            raise BadAtom("empty selection name")
        window = self._window(window_id)
        self._require_owner(client, window)
        if self.overhaul is not None:
            if not self.overhaul.authorize_selection_op(client, "copy", self.now):
                raise BadAccess(
                    f"copy denied for pid {client.pid}: no preceding user interaction"
                )
        previous = self.selections.set_owner(
            Selection(selection_name, client.client_id, window_id, self.now)
        )
        if self.tracer.enabled:
            self.tracer.event(
                "selection.own", "selection",
                selection=selection_name, pid=client.pid, window=window_id,
            )
        if previous is not None and previous.owner_client_id != client.client_id:
            previous_client = self._clients.get(previous.owner_client_id)
            if previous_client is not None and previous_client.connected:
                previous_client.deliver(
                    XEvent(
                        kind=EventKind.SELECTION_CLEAR,
                        timestamp=self.now,
                        provenance=EventProvenance.SERVER,
                        window_id=previous.owner_window_id,
                        payload={"selection": selection_name},
                    )
                )

    def get_selection_owner(self, client: XClient, selection_name: str) -> Optional[int]:
        """GetSelectionOwner -- steps (3)-(4): returns the owner window id."""
        self.requests_processed += 1
        selection = self.selections.owner_of(selection_name)
        return None if selection is None else selection.owner_window_id

    def convert_selection(
        self,
        client: XClient,
        selection_name: str,
        target: str,
        property_name: str,
        requestor_window_id: int,
    ) -> Optional[PendingTransfer]:
        """ConvertSelection -- step (6); Overhaul queries permission first.

        On success the server issues SelectionRequest to the owner (step 7)
        and returns the transfer record.  Returns None when the selection
        has no owner (the requestor would get an immediate failure
        SelectionNotify in real X; callers treat None the same way).
        """
        self.requests_processed += 1
        now = self._scheduler.now
        window = self._windows.get(requestor_window_id)
        if window is None:
            raise BadWindow(f"no window {requestor_window_id:#x}")
        if window.owner_client_id != client.client_id:
            raise BadMatch(
                f"client {client.client_id} does not own window {window.drawable_id:#x}"
            )
        if self.overhaul is not None:
            if not self.overhaul.authorize_selection_op(client, "paste", now):
                raise BadAccess(
                    f"paste denied for pid {client.pid}: no preceding user interaction"
                )
        selection = self.selections.owner_of(selection_name)
        if selection is None:
            return None
        owner_client = self._clients.get(selection.owner_client_id)
        if owner_client is None or not owner_client.connected:
            self.selections.clear_owner(selection_name)
            return None
        fast = self._fast_display_active()
        transfer = self.selections.begin_transfer(
            selection_name=selection_name,
            owner_client_id=selection.owner_client_id,
            requestor_client_id=client.client_id,
            requestor_window_id=requestor_window_id,
            property_name=property_name,
            target=target,
            now=now,
            reuse=fast,
        )
        if self.tracer.enabled:
            self.tracer.event(
                "selection.requested", "selection",
                selection=selection_name, pid=client.pid, window=requestor_window_id,
            )
        # A reused transfer for an unchanged owner buffer arrangement also
        # reuses the SelectionRequest payload it carried last round; the
        # reference path rebuilds the dict every conversion.
        request_payload = transfer.request_payload if fast else None
        if request_payload is None:
            request_payload = {
                "selection": selection_name,
                "target": target,
                "property": property_name,
                "requestor": requestor_window_id,
            }
            if fast:
                transfer.request_payload = request_payload
        owner_client.deliver(
            XEvent(
                kind=EventKind.SELECTION_REQUEST,
                timestamp=now,
                provenance=EventProvenance.SERVER,
                window_id=selection.owner_window_id,
                payload=request_payload,
            )
        )
        return transfer

    # -- properties ----------------------------------------------------------------

    def change_property(
        self, client: XClient, window_id: int, property_name: str, data: bytes
    ) -> None:
        """ChangeProperty -- step (8) when used by a selection owner.

        Any client may set properties on any window (standard X); when the
        write matches a pending transfer (owner writing the agreed property
        on the requestor's window) the transfer advances to DATA_STORED and
        in-flight protection begins.
        """
        self.requests_processed += 1
        window = self._windows.get(window_id)
        if window is None:
            raise BadWindow(f"no window {window_id:#x}")
        window.properties[property_name] = bytes(data)
        # A property write is a (potentially content-backing) change: it
        # participates in the damage model so composed frames are never
        # stale with respect to property-driven window state.
        window.note_state_change()
        transfer = self.selections.find_transfer(
            owner_client_id=client.client_id,
            requestor_window_id=window_id,
            property_name=property_name,
        )
        if transfer is not None and transfer.state is TransferState.REQUESTED:
            self.selections.mark_data_stored(transfer)
            if self.tracer.enabled:
                self.tracer.event(
                    "selection.data_stored", "selection",
                    selection=transfer.selection_name, window=window_id,
                )
        self._notify_property(window, property_name, deleted=False)

    def get_property(
        self,
        client: XClient,
        window_id: int,
        property_name: str,
        delete: bool = False,
    ) -> Optional[bytes]:
        """GetProperty -- steps (11)-(13) when completing a transfer.

        Under Overhaul, in-flight clipboard data on a foreign window is
        unreadable: only the paste target may fetch it ("OVERHAUL ensures
        that such events are only delivered to the paste target while the
        clipboard data is in flight").
        """
        self.requests_processed += 1
        window = self._windows.get(window_id)
        if window is None:
            raise BadWindow(f"no window {window_id:#x}")
        guarded = self.selections.guarded_transfer_for(window_id, property_name)
        if (
            self.overhaul is not None
            and guarded is not None
            and client.client_id != guarded.requestor_client_id
        ):
            self.property_snoops_blocked += 1
            raise BadAccess(
                "property holds in-flight clipboard data; only the paste "
                "target may read it"
            )
        data = window.properties.get(property_name)
        if data is None:
            return None
        if delete:
            del window.properties[property_name]
            window.note_state_change()
            if guarded is not None and client.client_id == guarded.requestor_client_id:
                self.selections.complete(guarded)
                if self.tracer.enabled:
                    self.tracer.event(
                        "selection.complete", "selection",
                        selection=guarded.selection_name, pid=client.pid,
                    )
            self._notify_property(window, property_name, deleted=True)
        return data

    def subscribe_property_events(self, client: XClient, window_id: int) -> None:
        """Select PropertyChangeMask on a window (the snooping vector)."""
        self.requests_processed += 1
        window = self._window(window_id)
        if client.client_id not in window.property_subscribers:
            window.property_subscribers.append(client.client_id)

    def _notify_property(self, window: Window, property_name: str, deleted: bool) -> None:
        """Deliver PropertyNotify, honouring in-flight protection."""
        guarded = self.selections.guarded_transfer_for(window.drawable_id, property_name)
        subscribers = window.property_subscribers
        owner_id = window.owner_client_id
        if not subscribers:
            # The overwhelmingly common shape (and both PropertyNotify
            # deliveries of every paste): no PropertyChangeMask snoopers,
            # so the owner is the only recipient -- no recipients list.
            recipients = (owner_id,)
        else:
            recipients = list(subscribers)
            if owner_id not in recipients:
                recipients.append(owner_id)
        fast = (
            self.fast_display
            and not self.tracer.enabled
            and self.prompt_interceptor is None
        )
        for client_id in recipients:
            if (
                self.overhaul is not None
                and guarded is not None
                and client_id != guarded.requestor_client_id
            ):
                self.property_snoops_blocked += 1
                continue
            subscriber = self._clients.get(client_id)
            if subscriber is None or not subscriber.connected:
                continue
            if fast:
                # Fast path: PROPERTY_NOTIFY payloads are pure (name,
                # deleted) pairs, so repeat notifications share one cached
                # dict -- the zero-copy handoff contract SendEvent's fast
                # path uses.  The pool evicts least-recently-used entries
                # rather than clearing wholesale, so a long tail of
                # distinct properties cannot flush the hot pairs.
                cache = self._prop_notify_payloads
                key = (property_name, deleted)
                payload = cache.get(key)
                if payload is None:
                    payload = {"property": property_name, "deleted": deleted}
                    cache[key] = payload
                    if len(cache) > _PROP_NOTIFY_POOL_LIMIT:
                        cache.popitem(last=False)
                else:
                    cache.move_to_end(key)
            else:
                payload = {"property": property_name, "deleted": deleted}
            subscriber.deliver(
                XEvent(
                    kind=EventKind.PROPERTY_NOTIFY,
                    timestamp=self._scheduler.now,
                    provenance=EventProvenance.SERVER,
                    window_id=window.drawable_id,
                    payload=payload,
                )
            )

    # -- display contents -------------------------------------------------------------

    def _record_damage(self, drawable: Drawable) -> None:
        """The per-drawable damage sink: feeds the incremental journal.

        Called on the *first* pending damage of a drawable (repeat draws
        find their journal entry already registered and skip the call),
        and not at all once the composer has proven the drawable
        invisible (:attr:`Drawable.composer_skip`).  Merge accounting
        lives in the shared counter cell, not here, so it is unaffected
        by either short-circuit.  The journal is a dict keyed by drawable
        id, so it is bounded by the number of live drawables, not the
        number of draws.
        """
        self._damage_journal[drawable.drawable_id] = drawable

    def compose_screen(self) -> bytes:
        """The full display image: a 2D framebuffer, then the overlay.

        The frame is a ``width x height`` row-major byte grid: every
        mapped opaque window blits its (zero-extended) content at its
        geometry, bottom-to-top and clipped to the screen; transparent
        windows have an empty paint region and contribute nothing.  The
        overlay banner is appended after the grid -- it genuinely sits
        above everything.

        Damage-tracked fast path, incremental and occlusion-aware: while
        the stacking order is unchanged, dirty rects from the damage
        journal are **blitted in place** -- only the rows each rect covers
        move, overlapping windows above are re-blitted over the patch, and
        a rect whose window is provably invisible (transparent, offscreen,
        or fully covered by an opaque window above) is *culled* without
        touching a single framebuffer byte.  Structural changes (map,
        unmap, raise, lower, disconnect) bump the stacking generation and
        force a full recompose.  An untouched screen remains a pure O(1)
        cache hit.  The patched frame is byte-identical to the reference
        composition by construction -- blits are idempotent per cell and
        occlusion facts cannot change without a generation bump (the
        differential suite asserts the equivalence, numpy path included).
        """
        # The fast gate is inlined (_fast_display_active) -- this is the
        # hottest request in the server and the call shows in profiles.
        if (
            self.fast_display
            and not self.tracer.enabled
            and self.prompt_interceptor is None
        ):
            stacking = self.stacking
            cache = self._compose_cache
            if cache is not None and cache.generation == stacking.generation:
                if self.incremental_compose:
                    patched = False
                    journal = self._damage_journal
                    if journal:
                        patched = True
                        self.compose_partial_hits += 1
                        index = cache.index
                        occluded = cache.occluded
                        while journal:
                            _, drawable = journal.popitem()
                            pos = index.get(drawable.drawable_id)
                            if pos is None:
                                # Pixmaps and unmapped windows: invisible,
                                # nothing to patch -- and nothing to journal
                                # until the next full recompose either.
                                drawable.journal_rects.clear()
                                drawable.journal_full = False
                                drawable.composer_skip = True
                            else:
                                occ = occluded[pos]
                                if occ is None:
                                    occ = self._occlusion_for(cache, pos)
                                if occ:
                                    rects = drawable.journal_rects
                                    self.compose_rects_culled += (
                                        1 if drawable.journal_full else len(rects)
                                    )
                                    drawable.journal_full = False
                                    rects.clear()
                                    # Proven invisible: future draws skip the
                                    # journal entirely (and their composes
                                    # become pure cache hits) until a
                                    # structural change forces a recompose.
                                    drawable.composer_skip = True
                                else:
                                    self._patch_window(cache, drawable, pos)
                    # Quiet-overlay shortcut: with no active alerts the
                    # band provably cannot move, so skip the render call.
                    overlay = self.overlay
                    if overlay._active:
                        banner = overlay.banner_bytes(self._scheduler.now)
                    else:
                        banner = b""
                    band_epoch = overlay.band_epoch
                    fb = cache.fb
                    if fb.epoch == cache.fb_epoch and band_epoch == cache.band_epoch:
                        if not patched:
                            self.compose_cache_hits += 1
                        return cache.image
                    if not patched:
                        # Banner-only repatch: the grid is untouched.
                        self.compose_partial_hits += 1
                    body = bytes(fb.data)
                    image = body + banner if banner else body
                    cache.fb_epoch = fb.epoch
                    cache.banner = banner
                    cache.band_epoch = band_epoch
                    cache.image = image
                    return image
                banner = self.overlay.banner_bytes(self._scheduler.now)
                if (
                    cache.render_key == stacking.render_key()
                    and cache.banner == banner
                ):
                    self.compose_cache_hits += 1
                    return cache.image
                self.compose_cache_misses += 1
                return self._rebuild_compose(stacking, banner)
            self.compose_cache_misses += 1
            return self._rebuild_compose(
                stacking, self.overlay.banner_bytes(self._scheduler.now)
            )
        # Reference path: a fresh pure-python composition every call.  It
        # also drains the journal (bookkeeping only -- the coalescing
        # counter is compose-independent) and drops the compose cache, so
        # a later fast compose rebuilds instead of trusting a journal
        # someone else consumed (e.g. across a traced interlude).
        if self._damage_journal:
            self._drain_journal()
            self._compose_cache = None
        fb = Framebuffer(self.width, self.height, use_numpy=False)
        for window in self.stacking.bottom_to_top():
            if window.transparent:
                continue
            geometry = window.geometry
            fb.blit(
                geometry.x, geometry.y, geometry.width, window.content,
                0, 0, geometry.width, geometry.height,
            )
        parts = [bytes(fb.data)]
        banner = self.overlay.banner_bytes(self.now)
        if banner:
            parts.append(banner)
        if self.prompt_interceptor is not None:
            prompt_banner = self.prompt_interceptor.banner()  # type: ignore[attr-defined]
            if prompt_banner:
                parts.append(prompt_banner)
        return b"".join(parts) if len(parts) > 1 else parts[0]

    def _drain_journal(self) -> None:
        """Consume every journal entry, resetting the per-drawable sets."""
        journal = self._damage_journal
        for drawable in journal.values():
            drawable.journal_rects.clear()
            drawable.journal_full = False
        journal.clear()

    def _rebuild_compose(self, stacking: StackingOrder, banner: bytes) -> bytes:
        """Full fast-path recompose: zero the grid, blit every opaque
        window bottom-to-top, rebuild the occlusion index (consumed
        lazily by the incremental patcher)."""
        self._drain_journal()
        sink = self._damage_sink
        width = self.width
        height = self.height
        use_numpy = self.fast_numpy_blit and NUMPY_AVAILABLE
        cache = self._compose_cache
        if (
            cache is not None
            and cache.fb.width == width
            and cache.fb.height == height
            and cache.fb.use_numpy == use_numpy
        ):
            fb = cache.fb  # reuse the allocation across rebuilds
            fb.clear()
        else:
            fb = Framebuffer(width, height, use_numpy=use_numpy)
        windows = stacking.bottom_to_top()
        index = {}
        bounds = []
        for pos, window in enumerate(windows):
            if window.damage_sink is not sink:
                # Defensive: windows constructed outside the request
                # layer (tests, rigs) join the journal on first compose.
                window.damage_sink = sink
                window._coalesce_cell = self._coalesce_cell
            # Occlusion verdicts from the previous cache die with it: a
            # full recompose re-reads every window's content directly, so
            # re-arming journal registration here is what makes the
            # draw-time skip sound.
            window.composer_skip = False
            index[window.drawable_id] = pos
            if window.transparent:
                bounds.append(None)
                continue
            clipped = window.screen_rect(width, height)
            bounds.append(clipped)
            if clipped is not None:
                geometry = window.geometry
                fb.blit(
                    geometry.x, geometry.y, geometry.width, window.content,
                    clipped.x - geometry.x, clipped.y - geometry.y,
                    clipped.width, clipped.height,
                )
        body = bytes(fb.data)
        image = body + banner if banner else body
        self._compose_cache = _ComposeCache(
            stacking.generation,
            windows,
            index,
            bounds,
            stacking.render_key(),
            fb,
            banner,
            self.overlay.band_epoch,
            image,
        )
        return image

    def _occlusion_for(self, cache: _ComposeCache, pos: int) -> bool:
        """Compute (and memoize) whether window *pos* is invisible.

        One bottom-up scan classifies the window as transparent/offscreen
        (bounds None), fully covered by a single opaque window above
        (occluded -- its damage can never reach the screen), or visible
        with a cached **blocker list**: the opaque windows above that
        overlap it and must be re-blitted over any patch.  Valid for the
        cache's lifetime -- geometry is immutable and every restack bumps
        the stacking generation, which rebuilds the cache.
        """
        bounds = cache.bounds
        clipped = bounds[pos]
        if clipped is None:
            cache.occluded[pos] = True
            return True
        windows = cache.windows
        blockers = []
        for above_pos in range(pos + 1, len(windows)):
            above_bounds = bounds[above_pos]
            if above_bounds is None:
                continue
            if above_bounds.contains_rect(clipped):
                cache.occluded[pos] = True
                return True
            if above_bounds.overlaps(clipped):
                blockers.append((windows[above_pos], above_bounds))
        cache.occluded[pos] = False
        cache.blockers[pos] = blockers
        return False

    def _patch_window(self, cache: _ComposeCache, window, pos: int) -> None:
        """Blit a visible window's dirty rects into the framebuffer.

        The dirty window's own blit covers every cell of each rect
        (content is zero-extended, so opaque windows are opaque over their
        whole geometry) -- no background fill is needed.  Overlapping
        opaque windows above are then re-blitted over the patched region,
        restoring the stacking order cell-for-cell.
        """
        fb = cache.fb
        geometry = window.geometry
        gx = geometry.x
        gy = geometry.y
        stride = geometry.width
        content = window.content
        rects = window.journal_rects
        if window.journal_full:
            window.journal_full = False
            dirty = (Rect(0, 0, stride, geometry.height),)
        else:
            dirty = tuple(rects)
        rects.clear()
        blockers = cache.blockers[pos]
        for rect in dirty:
            fb.blit(gx, gy, stride, content, rect.x, rect.y, rect.width, rect.height)
            if blockers:
                screen_rect = Rect(gx + rect.x, gy + rect.y, rect.width, rect.height)
                for above, above_bounds in blockers:
                    overlap = above_bounds.intersect(screen_rect)
                    if overlap is not None:
                        above_geometry = above.geometry
                        fb.blit(
                            above_geometry.x, above_geometry.y,
                            above_geometry.width, above.content,
                            overlap.x - above_geometry.x,
                            overlap.y - above_geometry.y,
                            overlap.width, overlap.height,
                        )

    def get_image(self, client: XClient, drawable_id: int, via: str = "core") -> bytes:
        """GetImage / XShmGetImage (``via='mit-shm'``).

        Reading your own drawable is unmediated; the root window or any
        foreign window requires the Overhaul permission query.  On denial
        "the screen capture request is dropped" -- surfaced as BadAccess.
        """
        self.requests_processed += 1
        drawable = self._drawable(drawable_id)
        foreign = drawable.owner_client_id != client.client_id
        if foreign and self.overhaul is not None:
            span = None
            if self.tracer.enabled:
                span = self.tracer.start(
                    "screen.gate", "decision",
                    pid=client.pid, via=via, drawable=drawable_id,
                )
            granted = False
            try:
                granted = self.overhaul.authorize_screen_capture(client, self.now)
            finally:
                if span is not None:
                    self.tracer.finish(span, granted=granted)
            if not granted:
                self.screen_captures_denied += 1
                raise BadAccess(
                    f"screen capture ({via}) denied for pid {client.pid}: "
                    "no preceding user interaction"
                )
        self.screen_captures_served += 1
        if drawable is self.root_window:
            return self.compose_screen()
        if self._fast_display_active():
            # Zero-copy handoff: an immutable snapshot cached per damage
            # epoch, shared across repeat reads of an undamaged drawable.
            return drawable.content_bytes()
        return bytes(drawable.content)

    def copy_area(
        self, client: XClient, src_id: int, dst_id: int, operation: str = "copy-area"
    ) -> None:
        """CopyArea: the same-owner fast path, else mediated.

        "If the owners of both buffers are identical... the request is
        allowed to proceed.  However, if a client is requesting the display
        contents owned by a different client (or the root window), OVERHAUL
        applies its user input-based access control."

        ``operation`` threads the request label through mediation so
        CopyPlane (which shares this implementation) stays distinguishable
        in traces, denial text, and the per-request counters.
        """
        self.requests_processed += 1
        self.copy_requests[operation] += 1
        src = self._drawable(src_id)
        dst = self._drawable(dst_id)
        if dst.owner_client_id != client.client_id:
            raise BadMatch(f"cannot copy into foreign drawable {dst_id:#x}")
        if src.owner_client_id != dst.owner_client_id and self.overhaul is not None:
            span = None
            if self.tracer.enabled:
                span = self.tracer.start(
                    "screen.gate", "decision",
                    pid=client.pid, via=operation, drawable=src_id,
                )
            granted = False
            try:
                granted = self.overhaul.authorize_screen_capture(client, self.now)
            finally:
                if span is not None:
                    self.tracer.finish(span, granted=granted)
            if not granted:
                self.screen_captures_denied += 1
                raise BadAccess(
                    f"{_COPY_LABELS[operation]} from foreign drawable denied "
                    f"for pid {client.pid}"
                )
        if src is self.root_window:
            dst.draw(self.compose_screen())
        elif self._fast_display_active():
            # Cached-bytes handoff: one copy into the destination buffer,
            # no intermediate snapshot allocation on repeat transfers.
            dst.draw(src.content_bytes())
        else:
            dst.draw(bytes(src.content))
        self.screen_captures_served += 1

    def copy_plane(self, client: XClient, src_id: int, dst_id: int) -> None:
        """CopyPlane: identical mediation semantics to CopyArea, but the
        trace span, denial message, and request counter all say so."""
        self.copy_area(client, src_id, dst_id, operation="copy-plane")

    # -- trusted output -----------------------------------------------------------------

    def display_alert(self, message: str, operation: str, pid: int, comm: str) -> None:
        """Render an overlay alert.  Reachable only from display-manager
        glue acting on a kernel netlink request -- there is deliberately no
        client request that leads here."""
        self.overlay.show_alert(message, operation, pid, comm, self.now)
