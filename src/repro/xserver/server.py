"""The simulated X server: clients, windows, input routing, selections,
screen capture, and the Overhaul hook points.

The design mirrors Section IV-A: an X.Org-like server responsible for

- receiving low-level input from device drivers and dispatching it to
  application windows (with provenance tagging -- the Overhaul patch);
- the ICCCM selection protocol of Figure 6 (with the Overhaul permission
  queries in steps 2 and 6, and the SendEvent / property-snooping
  interposition described in the text);
- display-content access via ``GetImage``, ``XShmGetImage``, ``CopyArea``
  and ``CopyPlane`` (with the same-owner fast path for the copy requests);
- the trusted overlay output path.

All Overhaul behaviour is reached through ``self.overhaul`` -- an
optional extension object installed by
:class:`repro.core.system.OverhaulSystem`.  With it absent, the server is a
faithful *unmodified* X server: synthetic events pass unexamined, selection
requests are served unconditionally, any client may capture the screen.
The baseline configurations in Table I and the unprotected machine of the
21-day study run exactly this code with ``overhaul is None``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Protocol, Set

from repro.obs.tracer import Tracer
from repro.sim.scheduler import EventScheduler
from repro.sim.time import NEVER, Timestamp
from repro.xserver.client import XClient
from repro.xserver.errors import (
    BadAccess,
    BadAtom,
    BadDrawable,
    BadMatch,
    BadWindow,
)
from repro.xserver.events import EventKind, EventProvenance, XEvent
from repro.xserver.overlay import OverlayManager
from repro.xserver.selection import (
    PendingTransfer,
    Selection,
    SelectionSubsystem,
    TransferState,
)

#: Request labels for the two copy requests sharing one implementation.
_COPY_LABELS = {"copy-area": "CopyArea", "copy-plane": "CopyPlane"}
from repro.xserver.window import Drawable, Geometry, Pixmap, Rect, StackingOrder, Window

#: PROPERTY_NOTIFY payload-pool bound (LRU-evicted, not cleared wholesale).
_PROP_NOTIFY_POOL_LIMIT = 256


class _ComposeCache:
    """One composed frame plus the structure needed to patch it in place.

    ``parts`` are the per-window content snapshots bottom-to-top,
    ``offsets`` their byte positions inside ``body``, and ``index`` maps
    drawable id -> part position, so a dirty band found in the damage
    journal resolves to a byte range in O(1).  ``body`` is the window
    portion of the frame; ``image`` is ``body`` plus the overlay banner,
    which composes as its own region keyed by the overlay band epoch.
    ``render_key`` is carried for the non-incremental fallback, which
    keys the whole frame exactly as PR-4 did.
    """

    __slots__ = (
        "generation",
        "parts",
        "offsets",
        "index",
        "render_key",
        "body",
        "banner",
        "band_epoch",
        "image",
    )

    def __init__(
        self,
        generation: int,
        parts: list,
        offsets: list,
        index: dict,
        render_key: tuple,
        body: bytes,
        banner: bytes,
        band_epoch: int,
        image: bytes,
    ) -> None:
        self.generation = generation
        self.parts = parts
        self.offsets = offsets
        self.index = index
        self.render_key = render_key
        self.body = body
        self.banner = banner
        self.band_epoch = band_epoch
        self.image = image


class OverhaulXExtension(Protocol):
    """The interface the Overhaul display-manager patch implements.

    Defined here (not in ``repro.core``) so the server depends only on the
    shape, never on Overhaul itself -- the layering the paper needs for
    "the same server binary, patched vs unpatched" comparisons.
    """

    def on_authentic_input(self, client: XClient, window: Window, event: XEvent) -> None:
        """An authentic hardware input event was routed to *client*."""

    def on_synthetic_input(self, client: XClient, window: Optional[Window], event: XEvent) -> None:
        """A synthetic input event was detected during dispatch."""

    def authorize_selection_op(self, client: XClient, operation: str, now: Timestamp) -> bool:
        """Permission query for 'copy' / 'paste' (Figure 2 steps 5-6)."""

    def authorize_screen_capture(self, client: XClient, now: Timestamp) -> bool:
        """Permission query for display-content access."""


class XServer:
    """The display manager."""

    ROOT_CLIENT_ID = 0

    def __init__(
        self,
        scheduler: EventScheduler,
        width: int = 1920,
        height: int = 1080,
        shared_secret: str = "visual-secret:cat.png",
        tracer: Optional[Tracer] = None,
    ) -> None:
        self._scheduler = scheduler
        self.width = width
        self.height = height
        #: The (machine-shared) decision-path tracer; disabled by default.
        self.tracer = tracer if tracer is not None else Tracer(lambda: scheduler.now)
        self.overlay = OverlayManager(shared_secret)
        self.overlay.tracer = self.tracer
        self.selections = SelectionSubsystem()
        self.stacking = StackingOrder()

        #: Installed by OverhaulSystem; None = unmodified server.
        self.overhaul: Optional[OverhaulXExtension] = None
        #: Prompt-mode click interceptor (repro.core.prompt_mode); consulted
        #: only on the *hardware* button path, so synthetic input can never
        #: answer a prompt.
        self.prompt_interceptor: Optional[object] = None

        self._clients: Dict[int, XClient] = {}
        self._windows: Dict[int, Window] = {}
        self._pixmaps: Dict[int, Pixmap] = {}
        self._input_drivers: Set[int] = set()  # id() tokens of attached drivers
        self._focus_window_id: Optional[int] = None

        # The root window: owned by the server, always mapped, covers the
        # screen.  GetImage on it captures the whole display.
        self.root_window = Window(
            owner_client_id=self.ROOT_CLIENT_ID,
            geometry=Geometry(0, 0, width, height),
            title="root",
        )
        self.root_window.mapped = True
        self.root_window.visible_since = scheduler.now
        self._windows[self.root_window.drawable_id] = self.root_window

        # Diagnostics / benchmark counters.
        self.requests_processed = 0
        self.input_events_routed = 0
        self.input_events_dropped = 0
        self.screen_captures_served = 0
        self.screen_captures_denied = 0
        self.sendevent_blocked = 0
        self.property_snoops_blocked = 0
        #: Per-request-type copy counters (CopyPlane is not CopyArea).
        self.copy_requests = {"copy-area": 0, "copy-plane": 0}
        #: Fast-path PROPERTY_NOTIFY payload pool, keyed (name, deleted);
        #: LRU-bounded so a long tail of distinct properties cannot evict
        #: the hot pairs wholesale.
        self._prop_notify_payloads: "OrderedDict[tuple, dict]" = OrderedDict()

        # -- damage-tracked display pipeline (see docs/performance.md) -----
        #: Hot-path switch mirroring ``OverhaulConfig.fast_display``; the
        #: fast path additionally disables itself while tracing is on or a
        #: prompt band is installed (those need the reference path).
        self.fast_display = True
        #: Incremental-composition switch: with it on (the default), a
        #: cached frame whose stacking order is unchanged is *patched* in
        #: place from the damage journal; with it off the fast path keys
        #: the whole frame on (generation, render_key, banner) and fully
        #: recomposes on any damage -- the PR-4 behaviour, kept as the
        #: measured fallback the `compose_partial` benchmark compares
        #: against.
        self.incremental_compose = True
        #: One composed frame plus patch structure (`_ComposeCache`).
        self._compose_cache: Optional[_ComposeCache] = None
        #: Damage journal: drawables whose content or render state changed
        #: since the last fast compose, keyed by drawable id.  Fed by the
        #: per-drawable ``damage_sink`` hook, so direct draws that bypass
        #: the request layer still land here.  Recording is unconditional
        #: (reference machines pay one dict store) so the journal is
        #: complete even across traced interludes.
        self._damage_journal: Dict[int, Drawable] = {}
        #: Stable bound-method identity for sink attachment checks.
        self._damage_sink = self._record_damage
        self.root_window.damage_sink = self._damage_sink
        #: Composition-cache effectiveness (diagnostics; not part of the
        #: equivalence contract -- the reference path never caches).
        self.compose_cache_hits = 0
        self.compose_cache_misses = 0
        #: Partial recompositions: the cached frame was patched in place
        #: (dirty bands and/or the banner region re-spliced) instead of
        #: rebuilt.  Fast-path-only, like the hit/miss counters.
        self.compose_partial_hits = 0
        #: Damage rects merged during per-epoch coalescing.  Counted on
        #: every path (the recording itself is unconditional), so fast and
        #: reference machines agree -- the differential suite asserts it.
        self.damage_rects_coalesced = 0

    # -- time -----------------------------------------------------------------

    @property
    def now(self) -> Timestamp:
        return self._scheduler.now

    # -- fast-path gate ---------------------------------------------------------

    def _fast_display_active(self) -> bool:
        """True when the damage-tracked display pipeline may be used.

        Mirrors the PR-3 hot-path switches: the flag itself comes from
        ``OverhaulConfig.fast_display`` (cleared for prompt-mode/gray-box
        configurations by the system assembly), and tracing forces the
        reference path at call time so span trees stay complete.
        """
        return (
            self.fast_display
            and not self.tracer.enabled
            and self.prompt_interceptor is None
        )

    # -- connections ---------------------------------------------------------------

    def connect(self, task: object) -> XClient:
        """Accept a client connection from a kernel task.

        The PID binding is taken from the task object itself -- the
        simulation's equivalent of resolving the client socket's peer PID
        from the kernel, which the paper calls an unforgeable binding.
        """
        client = XClient(pid=task.pid, comm=task.comm)  # type: ignore[attr-defined]
        self._clients[client.client_id] = client
        return client

    def disconnect(self, client: XClient) -> None:
        """Drop a client: unmap and forget its windows, clear selections."""
        client.disconnect()
        for window in [w for w in self._windows.values() if w.owner_client_id == client.client_id]:
            self.stacking.remove(window)
            del self._windows[window.drawable_id]
        for name in [
            s.name
            for s in (self.selections.owner_of(n) for n in ("CLIPBOARD", "PRIMARY"))
            if s is not None and s.owner_client_id == client.client_id
        ]:
            self.selections.clear_owner(name)
        self._clients.pop(client.client_id, None)

    def client_by_id(self, client_id: int) -> Optional[XClient]:
        return self._clients.get(client_id)

    # -- windows -----------------------------------------------------------------

    def create_window(
        self,
        client: XClient,
        geometry: Geometry,
        title: str = "",
        transparent: bool = False,
    ) -> Window:
        """CreateWindow."""
        self.requests_processed += 1
        window = Window(client.client_id, geometry, title)
        window.transparent = transparent
        window.damage_sink = self._damage_sink
        self._windows[window.drawable_id] = window
        return window

    def create_pixmap(self, client: XClient) -> Pixmap:
        """CreatePixmap: an offscreen drawable owned by *client*."""
        self.requests_processed += 1
        pixmap = Pixmap(client.client_id)
        pixmap.damage_sink = self._damage_sink
        self._pixmaps[pixmap.drawable_id] = pixmap
        return pixmap

    def _window(self, window_id: int) -> Window:
        window = self._windows.get(window_id)
        if window is None:
            raise BadWindow(f"no window {window_id:#x}")
        return window

    def _drawable(self, drawable_id: int) -> Drawable:
        drawable: Optional[Drawable] = self._windows.get(drawable_id)
        if drawable is None:
            drawable = self._pixmaps.get(drawable_id)
        if drawable is None:
            raise BadDrawable(f"no drawable {drawable_id:#x}")
        return drawable

    def _require_owner(self, client: XClient, window: Window) -> None:
        if window.owner_client_id != client.client_id:
            raise BadMatch(
                f"client {client.client_id} does not own window {window.drawable_id:#x}"
            )

    def map_window(self, client: XClient, window_id: int) -> None:
        """MapWindow: the window becomes visible, on top of the stack."""
        self.requests_processed += 1
        window = self._window(window_id)
        self._require_owner(client, window)
        if not window.mapped:
            window.mapped = True
            window.visible_since = self.now
            window.note_state_change()
            self.stacking.add_top(window)

    def unmap_window(self, client: XClient, window_id: int) -> None:
        """UnmapWindow."""
        self.requests_processed += 1
        window = self._window(window_id)
        self._require_owner(client, window)
        if window.mapped:
            window.mapped = False
            window.visible_since = NEVER
            window.note_state_change()
            self.stacking.remove(window)

    def raise_window(self, client: XClient, window_id: int) -> None:
        """RaiseWindow (ConfigureWindow stacking change).

        Note: raising does *not* reset ``visible_since`` -- only map/unmap
        cycles do.  A previously-invisible window popped over others is
        exactly the clickjacking pattern the visibility threshold defeats.
        """
        self.requests_processed += 1
        window = self._window(window_id)
        self._require_owner(client, window)
        window.note_state_change()
        self.stacking.raise_window(window)

    def draw(self, client: XClient, drawable_id: int, data: bytes) -> None:
        """A paint request: replace drawable content."""
        self.requests_processed += 1
        drawable = self._drawable(drawable_id)
        if drawable.owner_client_id != client.client_id:
            raise BadMatch(f"cannot draw on foreign drawable {drawable_id:#x}")
        drawable.draw(data)

    def draw_rect(
        self,
        client: XClient,
        drawable_id: int,
        x: int,
        y: int,
        width: int,
        height: int,
        data: bytes,
    ) -> Optional[Rect]:
        """A region paint request (PolyFillRectangle-style partial redraw).

        The rect is clipped to the drawable; zero-area or fully clipped
        rects are no-ops.  Damage is recorded at rect granularity, so the
        composition cache patches only this drawable's band instead of
        rebuilding the frame.  Returns the clipped rect that was painted
        (None when the request clipped to nothing).
        """
        self.requests_processed += 1
        drawable = self._drawable(drawable_id)
        if drawable.owner_client_id != client.client_id:
            raise BadMatch(f"cannot draw on foreign drawable {drawable_id:#x}")
        return drawable.draw_rect(x, y, width, height, data)

    def set_input_focus(self, client: XClient, window_id: int) -> None:
        """SetInputFocus: key events are routed to this window."""
        self.requests_processed += 1
        self._window(window_id)  # validate
        self._focus_window_id = window_id

    @property
    def focus_window(self) -> Optional[Window]:
        if self._focus_window_id is None:
            return None
        return self._windows.get(self._focus_window_id)

    # -- input dispatch ---------------------------------------------------------------

    def attach_input_driver(self, driver: object) -> int:
        """Attach a hardware input driver; returns its injection token.

        Only machine assembly code calls this; applications hold XClient
        handles, never driver tokens, so they cannot inject HARDWARE
        provenance events.
        """
        token = id(driver)
        self._input_drivers.add(token)
        return token

    def _check_driver(self, token: int) -> None:
        if token not in self._input_drivers:
            raise BadAccess("input injection requires an attached hardware driver")

    def inject_hardware_key(
        self, token: int, kind: EventKind, keycode: int, modifiers: int = 0
    ) -> None:
        """A key event from a physical keyboard, routed to the focus window."""
        self._check_driver(token)
        event = XEvent(
            kind=kind,
            timestamp=self.now,
            provenance=EventProvenance.HARDWARE,
            detail=keycode,
            payload={"modifiers": modifiers},
        )
        self._route_input(self.focus_window, event)

    def inject_hardware_button(
        self, token: int, kind: EventKind, x: int, y: int, button: int
    ) -> None:
        """A button event from a physical mouse, routed by position.

        The prompt band (when prompt mode is active) gets first claim on
        hardware presses -- it lives above the window stack, and this is
        the only code path that can reach it.
        """
        self._check_driver(token)
        if (
            self.prompt_interceptor is not None
            and kind is EventKind.BUTTON_PRESS
            and self.prompt_interceptor.intercept_hardware_click(x, y, self.now)  # type: ignore[attr-defined]
        ):
            return
        event = XEvent(
            kind=kind,
            timestamp=self.now,
            provenance=EventProvenance.HARDWARE,
            detail=button,
            x=x,
            y=y,
        )
        self._route_input(self.stacking.topmost_at(x, y), event)

    def inject_hardware_motion(self, token: int, x: int, y: int) -> None:
        """Pointer motion (no interaction notification is generated for
        motion alone; only presses/releases/keys count as interaction)."""
        self._check_driver(token)
        event = XEvent(
            kind=EventKind.MOTION,
            timestamp=self.now,
            provenance=EventProvenance.HARDWARE,
            x=x,
            y=y,
        )
        self._route_input(self.stacking.topmost_at(x, y), event)

    def _route_input(self, window: Optional[Window], event: XEvent) -> None:
        """Deliver an input event to the owner of *window*.

        This is the enhanced input-dispatching mechanism: every event
        passes the provenance check here, and authentic events reaching a
        legitimately-visible window trigger the Overhaul hook that sends
        the interaction notification to the kernel (Figures 1-2, step 2).
        """
        tracer = self.tracer
        if window is None:
            self.input_events_dropped += 1
            if tracer.enabled:
                tracer.event(
                    "input.drop", "input", kind=event.kind.value,
                    provenance=event.provenance.name,
                )
            return
        client = self._clients.get(window.owner_client_id)
        if client is None or not client.connected:
            self.input_events_dropped += 1
            return
        event.window_id = window.drawable_id
        span = None
        if tracer.enabled:
            # The provenance filter is the root of every trusted-input
            # decision path: notification spans nest under it.
            span = tracer.start(
                "input.route",
                "input",
                kind=event.kind.value,
                provenance=event.provenance.name,
                window=window.drawable_id,
                pid=client.pid,
            )
        try:
            if self.overhaul is not None:
                if event.is_authentic_input:
                    self.overhaul.on_authentic_input(client, window, event)
                elif event.kind.is_input:
                    self.overhaul.on_synthetic_input(client, window, event)
            self.input_events_routed += 1
            client.deliver(event)
        finally:
            if span is not None:
                tracer.finish(span)

    # -- SendEvent ---------------------------------------------------------------

    def send_event(
        self,
        sender: XClient,
        window_id: int,
        kind: EventKind,
        detail: Optional[int] = None,
        payload: Optional[dict] = None,
    ) -> None:
        """The core-protocol SendEvent request.

        Events minted here always carry SEND_EVENT provenance (the protocol
        forces the synthetic flag).  Under Overhaul, SendEvent is also the
        interposition point for selection-protocol bypass attacks:

        - ``SelectionRequest`` via SendEvent would let a malicious client
          solicit the clipboard data directly from the owner; blocked.
        - ``SelectionNotify`` via SendEvent is *legitimate* exactly once
          per transfer -- when the selection owner completes step (9) of
          Figure 6 for a transfer the server knows about; anything else is
          blocked.
        """
        self.requests_processed += 1
        window = self._windows.get(window_id)
        if window is None:
            raise BadWindow(f"no window {window_id:#x}")
        target_client = self._clients.get(window.owner_client_id)
        if target_client is None:
            raise BadWindow(f"window {window_id:#x} has no connected owner")

        if kind is EventKind.SELECTION_NOTIFY:
            # Step (9) bookkeeping happens on any server; only the
            # *enforcement* of a matching transfer is the Overhaul patch.
            transfer = self.selections.find_transfer(
                owner_client_id=sender.client_id,
                requestor_window_id=window_id,
            )
            if transfer is not None and transfer.state is TransferState.DATA_STORED:
                self.selections.mark_notified(transfer)
                if self.tracer.enabled:
                    self.tracer.event(
                        "selection.notify", "selection",
                        selection=transfer.selection_name, window=window_id,
                    )
            elif self.overhaul is not None:
                self.sendevent_blocked += 1
                raise BadAccess(
                    "SendEvent(SelectionNotify) does not match a pending "
                    "clipboard transfer; blocked"
                )
        elif kind in (EventKind.SELECTION_REQUEST, EventKind.SELECTION_CLEAR):
            if self.overhaul is not None:
                self.sendevent_blocked += 1
                raise BadAccess(
                    f"SendEvent({kind.value}) would break the selection "
                    "protocol; blocked"
                )

        if payload is not None and self._fast_display_active():
            # Zero-copy handoff: callers hand the payload over; the
            # reference path keeps the defensive copy.
            event_payload = payload
        else:
            event_payload = dict(payload or {})
        event = XEvent(
            kind=kind,
            timestamp=self._scheduler.now,
            provenance=EventProvenance.SEND_EVENT,
            window_id=window_id,
            detail=detail,
            payload=event_payload,
        )
        if event.kind.is_input:
            # Synthetic input: delivered (GUI testing keeps working) but the
            # dispatch hook sees it as synthetic, so it can never produce an
            # interaction notification.
            self._route_input(window, event)
        else:
            target_client.deliver(event)

    # -- XTest extension ----------------------------------------------------------

    def xtest_fake_input(
        self,
        client: XClient,
        kind: EventKind,
        detail: Optional[int] = None,
        x: int = 0,
        y: int = 0,
    ) -> None:
        """XTestFakeInput: inject an input event as the GUI-testing
        extension does.

        No synthetic flag exists for XTest -- which is why the paper had to
        add provenance tagging.  The event is routed exactly like hardware
        input, but with XTEST provenance, so the Overhaul dispatch hook
        never treats it as user interaction.
        """
        self.requests_processed += 1
        if not kind.is_input:
            raise BadMatch(f"XTestFakeInput only injects input events, not {kind.value}")
        event = XEvent(
            kind=kind,
            timestamp=self.now,
            provenance=EventProvenance.XTEST,
            detail=detail,
            x=x,
            y=y,
        )
        if kind in (EventKind.KEY_PRESS, EventKind.KEY_RELEASE):
            self._route_input(self.focus_window, event)
        else:
            self._route_input(self.stacking.topmost_at(x, y), event)

    # -- selections (Figure 6) ---------------------------------------------------------

    def set_selection_owner(
        self, client: XClient, selection_name: str, window_id: int
    ) -> None:
        """SetSelectionOwner -- step (2); Overhaul queries permission first."""
        self.requests_processed += 1
        if not selection_name:
            raise BadAtom("empty selection name")
        window = self._window(window_id)
        self._require_owner(client, window)
        if self.overhaul is not None:
            if not self.overhaul.authorize_selection_op(client, "copy", self.now):
                raise BadAccess(
                    f"copy denied for pid {client.pid}: no preceding user interaction"
                )
        previous = self.selections.set_owner(
            Selection(selection_name, client.client_id, window_id, self.now)
        )
        if self.tracer.enabled:
            self.tracer.event(
                "selection.own", "selection",
                selection=selection_name, pid=client.pid, window=window_id,
            )
        if previous is not None and previous.owner_client_id != client.client_id:
            previous_client = self._clients.get(previous.owner_client_id)
            if previous_client is not None and previous_client.connected:
                previous_client.deliver(
                    XEvent(
                        kind=EventKind.SELECTION_CLEAR,
                        timestamp=self.now,
                        provenance=EventProvenance.SERVER,
                        window_id=previous.owner_window_id,
                        payload={"selection": selection_name},
                    )
                )

    def get_selection_owner(self, client: XClient, selection_name: str) -> Optional[int]:
        """GetSelectionOwner -- steps (3)-(4): returns the owner window id."""
        self.requests_processed += 1
        selection = self.selections.owner_of(selection_name)
        return None if selection is None else selection.owner_window_id

    def convert_selection(
        self,
        client: XClient,
        selection_name: str,
        target: str,
        property_name: str,
        requestor_window_id: int,
    ) -> Optional[PendingTransfer]:
        """ConvertSelection -- step (6); Overhaul queries permission first.

        On success the server issues SelectionRequest to the owner (step 7)
        and returns the transfer record.  Returns None when the selection
        has no owner (the requestor would get an immediate failure
        SelectionNotify in real X; callers treat None the same way).
        """
        self.requests_processed += 1
        now = self._scheduler.now
        window = self._windows.get(requestor_window_id)
        if window is None:
            raise BadWindow(f"no window {requestor_window_id:#x}")
        if window.owner_client_id != client.client_id:
            raise BadMatch(
                f"client {client.client_id} does not own window {window.drawable_id:#x}"
            )
        if self.overhaul is not None:
            if not self.overhaul.authorize_selection_op(client, "paste", now):
                raise BadAccess(
                    f"paste denied for pid {client.pid}: no preceding user interaction"
                )
        selection = self.selections.owner_of(selection_name)
        if selection is None:
            return None
        owner_client = self._clients.get(selection.owner_client_id)
        if owner_client is None or not owner_client.connected:
            self.selections.clear_owner(selection_name)
            return None
        fast = self._fast_display_active()
        transfer = self.selections.begin_transfer(
            selection_name=selection_name,
            owner_client_id=selection.owner_client_id,
            requestor_client_id=client.client_id,
            requestor_window_id=requestor_window_id,
            property_name=property_name,
            target=target,
            now=now,
            reuse=fast,
        )
        if self.tracer.enabled:
            self.tracer.event(
                "selection.requested", "selection",
                selection=selection_name, pid=client.pid, window=requestor_window_id,
            )
        # A reused transfer for an unchanged owner buffer arrangement also
        # reuses the SelectionRequest payload it carried last round; the
        # reference path rebuilds the dict every conversion.
        request_payload = transfer.request_payload if fast else None
        if request_payload is None:
            request_payload = {
                "selection": selection_name,
                "target": target,
                "property": property_name,
                "requestor": requestor_window_id,
            }
            if fast:
                transfer.request_payload = request_payload
        owner_client.deliver(
            XEvent(
                kind=EventKind.SELECTION_REQUEST,
                timestamp=now,
                provenance=EventProvenance.SERVER,
                window_id=selection.owner_window_id,
                payload=request_payload,
            )
        )
        return transfer

    # -- properties ----------------------------------------------------------------

    def change_property(
        self, client: XClient, window_id: int, property_name: str, data: bytes
    ) -> None:
        """ChangeProperty -- step (8) when used by a selection owner.

        Any client may set properties on any window (standard X); when the
        write matches a pending transfer (owner writing the agreed property
        on the requestor's window) the transfer advances to DATA_STORED and
        in-flight protection begins.
        """
        self.requests_processed += 1
        window = self._windows.get(window_id)
        if window is None:
            raise BadWindow(f"no window {window_id:#x}")
        window.properties[property_name] = bytes(data)
        # A property write is a (potentially content-backing) change: it
        # participates in the damage model so composed frames are never
        # stale with respect to property-driven window state.
        window.note_state_change()
        transfer = self.selections.find_transfer(
            owner_client_id=client.client_id,
            requestor_window_id=window_id,
            property_name=property_name,
        )
        if transfer is not None and transfer.state is TransferState.REQUESTED:
            self.selections.mark_data_stored(transfer)
            if self.tracer.enabled:
                self.tracer.event(
                    "selection.data_stored", "selection",
                    selection=transfer.selection_name, window=window_id,
                )
        self._notify_property(window, property_name, deleted=False)

    def get_property(
        self,
        client: XClient,
        window_id: int,
        property_name: str,
        delete: bool = False,
    ) -> Optional[bytes]:
        """GetProperty -- steps (11)-(13) when completing a transfer.

        Under Overhaul, in-flight clipboard data on a foreign window is
        unreadable: only the paste target may fetch it ("OVERHAUL ensures
        that such events are only delivered to the paste target while the
        clipboard data is in flight").
        """
        self.requests_processed += 1
        window = self._windows.get(window_id)
        if window is None:
            raise BadWindow(f"no window {window_id:#x}")
        guarded = self.selections.guarded_transfer_for(window_id, property_name)
        if (
            self.overhaul is not None
            and guarded is not None
            and client.client_id != guarded.requestor_client_id
        ):
            self.property_snoops_blocked += 1
            raise BadAccess(
                "property holds in-flight clipboard data; only the paste "
                "target may read it"
            )
        data = window.properties.get(property_name)
        if data is None:
            return None
        if delete:
            del window.properties[property_name]
            window.note_state_change()
            if guarded is not None and client.client_id == guarded.requestor_client_id:
                self.selections.complete(guarded)
                if self.tracer.enabled:
                    self.tracer.event(
                        "selection.complete", "selection",
                        selection=guarded.selection_name, pid=client.pid,
                    )
            self._notify_property(window, property_name, deleted=True)
        return data

    def subscribe_property_events(self, client: XClient, window_id: int) -> None:
        """Select PropertyChangeMask on a window (the snooping vector)."""
        self.requests_processed += 1
        window = self._window(window_id)
        if client.client_id not in window.property_subscribers:
            window.property_subscribers.append(client.client_id)

    def _notify_property(self, window: Window, property_name: str, deleted: bool) -> None:
        """Deliver PropertyNotify, honouring in-flight protection."""
        guarded = self.selections.guarded_transfer_for(window.drawable_id, property_name)
        subscribers = window.property_subscribers
        owner_id = window.owner_client_id
        if not subscribers:
            # The overwhelmingly common shape (and both PropertyNotify
            # deliveries of every paste): no PropertyChangeMask snoopers,
            # so the owner is the only recipient -- no recipients list.
            recipients = (owner_id,)
        else:
            recipients = list(subscribers)
            if owner_id not in recipients:
                recipients.append(owner_id)
        fast = (
            self.fast_display
            and not self.tracer.enabled
            and self.prompt_interceptor is None
        )
        for client_id in recipients:
            if (
                self.overhaul is not None
                and guarded is not None
                and client_id != guarded.requestor_client_id
            ):
                self.property_snoops_blocked += 1
                continue
            subscriber = self._clients.get(client_id)
            if subscriber is None or not subscriber.connected:
                continue
            if fast:
                # Fast path: PROPERTY_NOTIFY payloads are pure (name,
                # deleted) pairs, so repeat notifications share one cached
                # dict -- the zero-copy handoff contract SendEvent's fast
                # path uses.  The pool evicts least-recently-used entries
                # rather than clearing wholesale, so a long tail of
                # distinct properties cannot flush the hot pairs.
                cache = self._prop_notify_payloads
                key = (property_name, deleted)
                payload = cache.get(key)
                if payload is None:
                    payload = {"property": property_name, "deleted": deleted}
                    cache[key] = payload
                    if len(cache) > _PROP_NOTIFY_POOL_LIMIT:
                        cache.popitem(last=False)
                else:
                    cache.move_to_end(key)
            else:
                payload = {"property": property_name, "deleted": deleted}
            subscriber.deliver(
                XEvent(
                    kind=EventKind.PROPERTY_NOTIFY,
                    timestamp=self._scheduler.now,
                    provenance=EventProvenance.SERVER,
                    window_id=window.drawable_id,
                    payload=payload,
                )
            )

    # -- display contents -------------------------------------------------------------

    def _record_damage(self, drawable: Drawable, coalesced: int) -> None:
        """The per-drawable damage sink: feeds the incremental journal.

        Runs on *every* damage event regardless of fast-path state, so the
        coalescing counter stays in parity between fast and reference
        machines and the journal is complete when a traced interlude ends.
        The journal is a dict keyed by drawable id, so it is bounded by
        the number of live drawables, not the number of draws.
        """
        if coalesced:
            self.damage_rects_coalesced += coalesced
        self._damage_journal[drawable.drawable_id] = drawable

    def compose_screen(self) -> bytes:
        """The full display image: windows bottom-to-top, then the overlay.

        Damage-tracked fast path, now incremental: while the stacking
        order is unchanged, the cached frame is **patched in place** from
        the damage journal -- only the dirty bands (and the banner region,
        which keys on its own overlay epoch) are re-spliced, so a partial
        redraw costs O(dirty), not O(windows).  Structural changes (map,
        unmap, raise, lower, disconnect) bump the stacking generation and
        force a full recompose.  An untouched screen remains a pure O(1)
        cache hit.  The patched frame is byte-identical to the reference
        composition by construction: each band is the drawable's own
        snapshot and the order never changes without a generation bump
        (the differential suite asserts it).
        """
        # The fast gate is inlined (_fast_display_active) -- this is the
        # hottest request in the server and the call shows in profiles.
        if (
            self.fast_display
            and not self.tracer.enabled
            and self.prompt_interceptor is None
        ):
            stacking = self.stacking
            overlay = self.overlay
            banner = overlay.banner_bytes(self._scheduler.now)
            band_epoch = overlay.band_epoch
            cache = self._compose_cache
            if cache is not None and cache.generation == stacking.generation:
                if self.incremental_compose:
                    journal = self._damage_journal
                    if journal:
                        index = cache.index
                        if len(journal) == 1:
                            # Dominant shape: one drawable damaged.
                            drawable = next(iter(journal.values()))
                            journal.clear()
                            if drawable.drawable_id in index:
                                return self._patch_compose(
                                    cache, (drawable,), banner, band_epoch
                                )
                        else:
                            dirty = [
                                d for d in journal.values() if d.drawable_id in index
                            ]
                            journal.clear()
                            if dirty:
                                return self._patch_compose(
                                    cache, dirty, banner, band_epoch
                                )
                    if band_epoch == cache.band_epoch:
                        self.compose_cache_hits += 1
                        return cache.image
                    return self._patch_compose(cache, (), banner, band_epoch)
                if (
                    cache.render_key == stacking.render_key()
                    and cache.banner == banner
                ):
                    self.compose_cache_hits += 1
                    return cache.image
            self.compose_cache_misses += 1
            self._damage_journal.clear()
            sink = self._damage_sink
            parts = []
            offsets = []
            index = {}
            pos = 0
            for window in stacking.bottom_to_top():
                if window.damage_sink is not sink:
                    # Defensive: windows constructed outside the request
                    # layer (tests, rigs) join the journal on first compose.
                    window.damage_sink = sink
                part = window.content_bytes()
                index[window.drawable_id] = len(parts)
                offsets.append(pos)
                parts.append(part)
                pos += len(part)
            body = b"".join(parts)
            image = body + banner if banner else body
            self._compose_cache = _ComposeCache(
                stacking.generation,
                parts,
                offsets,
                index,
                stacking.render_key(),
                body,
                banner,
                band_epoch,
                image,
            )
            return image
        parts = [bytes(w.content) for w in self.stacking.bottom_to_top()]
        banner = self.overlay.banner_bytes(self.now)
        if banner:
            parts.append(banner)
        if self.prompt_interceptor is not None:
            prompt_banner = self.prompt_interceptor.banner()  # type: ignore[attr-defined]
            if prompt_banner:
                parts.append(prompt_banner)
        return b"".join(parts)

    def _patch_compose(
        self, cache: _ComposeCache, dirty, banner: bytes, band_epoch: int
    ) -> bytes:
        """Patch the cached frame: re-splice dirty bands and the banner.

        The dominant shape -- one dirty window -- splices its band into
        the body with a single three-piece join over memoryviews (no
        intermediate slice copies).  Multiple dirty bands rebuild the body
        from the part list, which is still free of per-window snapshot
        work for the clean windows.  A journal entry whose snapshot did
        not actually change (render-state-only events like property
        writes) costs nothing: the band keeps its bytes object and the
        frame is reused as-is.
        """
        self.compose_partial_hits += 1
        parts = cache.parts
        offsets = cache.offsets
        body = cache.body
        changed = False
        if len(dirty) == 1:
            window = dirty[0]
            i = cache.index[window.drawable_id]
            old = parts[i]
            new = window.content_bytes()
            if new is not old:
                start = offsets[i]
                end = start + len(old)
                view = memoryview(body)
                body = b"".join((view[:start], new, view[end:]))
                parts[i] = new
                delta = len(new) - len(old)
                if delta:
                    for j in range(i + 1, len(offsets)):
                        offsets[j] += delta
                cache.body = body
                changed = True
        elif dirty:
            for window in dirty:
                i = cache.index[window.drawable_id]
                new = window.content_bytes()
                if new is not parts[i]:
                    parts[i] = new
                    changed = True
            if changed:
                body = b"".join(parts)
                pos = 0
                for i, part in enumerate(parts):
                    offsets[i] = pos
                    pos += len(part)
                cache.body = body
        if not changed and banner == cache.banner:
            cache.band_epoch = band_epoch
            return cache.image
        image = body + banner if banner else body
        cache.banner = banner
        cache.band_epoch = band_epoch
        cache.image = image
        return image

    def get_image(self, client: XClient, drawable_id: int, via: str = "core") -> bytes:
        """GetImage / XShmGetImage (``via='mit-shm'``).

        Reading your own drawable is unmediated; the root window or any
        foreign window requires the Overhaul permission query.  On denial
        "the screen capture request is dropped" -- surfaced as BadAccess.
        """
        self.requests_processed += 1
        drawable = self._drawable(drawable_id)
        foreign = drawable.owner_client_id != client.client_id
        if foreign and self.overhaul is not None:
            span = None
            if self.tracer.enabled:
                span = self.tracer.start(
                    "screen.gate", "decision",
                    pid=client.pid, via=via, drawable=drawable_id,
                )
            granted = False
            try:
                granted = self.overhaul.authorize_screen_capture(client, self.now)
            finally:
                if span is not None:
                    self.tracer.finish(span, granted=granted)
            if not granted:
                self.screen_captures_denied += 1
                raise BadAccess(
                    f"screen capture ({via}) denied for pid {client.pid}: "
                    "no preceding user interaction"
                )
        self.screen_captures_served += 1
        if drawable is self.root_window:
            return self.compose_screen()
        if self._fast_display_active():
            # Zero-copy handoff: an immutable snapshot cached per damage
            # epoch, shared across repeat reads of an undamaged drawable.
            return drawable.content_bytes()
        return bytes(drawable.content)

    def copy_area(
        self, client: XClient, src_id: int, dst_id: int, operation: str = "copy-area"
    ) -> None:
        """CopyArea: the same-owner fast path, else mediated.

        "If the owners of both buffers are identical... the request is
        allowed to proceed.  However, if a client is requesting the display
        contents owned by a different client (or the root window), OVERHAUL
        applies its user input-based access control."

        ``operation`` threads the request label through mediation so
        CopyPlane (which shares this implementation) stays distinguishable
        in traces, denial text, and the per-request counters.
        """
        self.requests_processed += 1
        self.copy_requests[operation] += 1
        src = self._drawable(src_id)
        dst = self._drawable(dst_id)
        if dst.owner_client_id != client.client_id:
            raise BadMatch(f"cannot copy into foreign drawable {dst_id:#x}")
        if src.owner_client_id != dst.owner_client_id and self.overhaul is not None:
            span = None
            if self.tracer.enabled:
                span = self.tracer.start(
                    "screen.gate", "decision",
                    pid=client.pid, via=operation, drawable=src_id,
                )
            granted = False
            try:
                granted = self.overhaul.authorize_screen_capture(client, self.now)
            finally:
                if span is not None:
                    self.tracer.finish(span, granted=granted)
            if not granted:
                self.screen_captures_denied += 1
                raise BadAccess(
                    f"{_COPY_LABELS[operation]} from foreign drawable denied "
                    f"for pid {client.pid}"
                )
        if src is self.root_window:
            dst.draw(self.compose_screen())
        elif self._fast_display_active():
            # Cached-bytes handoff: one copy into the destination buffer,
            # no intermediate snapshot allocation on repeat transfers.
            dst.draw(src.content_bytes())
        else:
            dst.draw(bytes(src.content))
        self.screen_captures_served += 1

    def copy_plane(self, client: XClient, src_id: int, dst_id: int) -> None:
        """CopyPlane: identical mediation semantics to CopyArea, but the
        trace span, denial message, and request counter all say so."""
        self.copy_area(client, src_id, dst_id, operation="copy-plane")

    # -- trusted output -----------------------------------------------------------------

    def display_alert(self, message: str, operation: str, pid: int, comm: str) -> None:
        """Render an overlay alert.  Reachable only from display-manager
        glue acting on a kernel netlink request -- there is deliberately no
        client request that leads here."""
        self.overlay.show_alert(message, operation, pid, comm, self.now)
