"""X client connections.

A client is a task's connection to the X server.  The paper's key detail
(Section IV-A, "Trusted input"): interaction notifications "are labeled with
the PID of the process that received the event... The PID serves as an
unforgeable binding between a window belonging to a process and events, as
the mapping between X client sockets and the PID is retrieved from the
kernel."  :attr:`XClient.pid` is therefore resolved by the *server* from the
connecting task at accept time -- a client cannot claim another process's
identity.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.xserver.errors import BadClient
from repro.xserver.events import XEvent

_client_ids = itertools.count(1)


class XClient:
    """One connected X client."""

    def __init__(self, pid: int, comm: str) -> None:
        self.client_id = next(_client_ids)
        #: Kernel-verified PID of the connecting process (unforgeable).
        self.pid = pid
        self.comm = comm
        self.connected = True
        #: Poll-style clients read events from this queue; callback-driven
        #: clients (the SimApp event loop) consume every event synchronously
        #: inside :meth:`deliver` and set this False so the queue -- which
        #: nothing would ever pop -- does not grow without bound across
        #: benchmark-scale workloads.
        self.queue_events = True
        self.event_queue: Deque[XEvent] = deque()
        self._handlers: List[Callable[[XEvent], None]] = []
        #: Immutable snapshot iterated at delivery time.  Rebuilt on
        #: registration, so a handler registered mid-delivery takes effect
        #: from the *next* event -- exactly the semantics the previous
        #: copy-per-delivery loop had, without a list allocation per event.
        self._handler_snapshot: Tuple[Callable[[XEvent], None], ...] = ()
        self.events_received = 0

    def on_event(self, handler: Callable[[XEvent], None]) -> None:
        """Register a callback invoked for every delivered event.

        This is the application's event loop entry point (the Xlib
        ``XNextEvent`` equivalent for our callback-driven apps).
        """
        self._handlers.append(handler)
        self._handler_snapshot = tuple(self._handlers)

    def deliver(self, event: XEvent) -> None:
        """Server-side: queue an event and run the client's handlers."""
        if not self.connected:
            raise BadClient(f"client {self.client_id} is disconnected")
        if self.queue_events:
            self.event_queue.append(event)
        self.events_received += 1
        for handler in self._handler_snapshot:
            handler(event)

    def next_event(self) -> Optional[XEvent]:
        """Pop the oldest queued event (poll-style consumption)."""
        return self.event_queue.popleft() if self.event_queue else None

    def pending_events(self) -> int:
        return len(self.event_queue)

    def disconnect(self) -> None:
        self.connected = False

    def __repr__(self) -> str:
        state = "connected" if self.connected else "disconnected"
        return f"XClient(id={self.client_id}, pid={self.pid}, comm={self.comm!r}, {state})"
