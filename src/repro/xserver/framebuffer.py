"""The 2D screen framebuffer: clipped rect blits over a row-major byte grid.

The screen is a ``width x height`` grid of one-byte cells backed by a
single ``bytearray``.  Windows composite into it with **rect blits**: a
window-local rect lands at its screen position via per-row slice
assignments (each destination row is a contiguous slice of the backing
buffer).  This replaces the PR-5 model where the frame was the 1D
concatenation of window contents and every damage rect had to be widened
to its ``span()`` bounding band -- here a 1-px-wide column touches
exactly ``height`` bytes, not ``height`` full rows.

Blit semantics (shared by the fast and reference composers, and mirrored
by the naive cell model in the property suite):

- window content is row-major at the window's stride (its width) and
  **zero-extended**: cells beyond ``len(content)`` read as ``\\x00``, so
  an opaque window always covers its full geometry rect;
- the blit is clipped to the screen; fully clipped blits are no-ops.

The optional numpy path (``use_numpy``, gated by
``OverhaulConfig.fast_numpy_blit``) vectorizes multi-row copies through a
2D view of the same backing buffer.  It is engaged only when the source
rows all lie inside the content buffer (no zero-extension needed) and the
rect is tall enough to amortize the view setup; everything else takes the
pure-python row loop.  Both produce identical bytes -- the differential
suite drives them against the reference composer.  numpy itself is an
*optional* dependency (the ``repro[fast]`` extra): when the import fails
the flag degrades silently to the pure-python loop.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised via the fallback unit test
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: True when the optional numpy dependency is importable.
NUMPY_AVAILABLE = _np is not None

#: Minimum clipped rect height before the numpy path is worth the view
#: setup; short rects (cursor rows, scroll lines) stay on the slice loop.
_NUMPY_MIN_ROWS = 4


class Framebuffer:
    """A row-major 1-byte-per-cell screen buffer with clipped rect blits."""

    __slots__ = ("width", "height", "data", "use_numpy", "epoch", "_nd")

    def __init__(self, width: int, height: int, use_numpy: bool = False) -> None:
        self.width = width
        self.height = height
        self.data = bytearray(width * height)
        #: numpy engagement: requested AND importable.
        self.use_numpy = bool(use_numpy) and _np is not None
        #: Bumped by every mutating blit/clear; the composer compares it to
        #: decide whether the cached frame snapshot is stale.
        self.epoch = 0
        self._nd = None

    # -- numpy view ---------------------------------------------------------

    def _grid(self):
        """The cached 2D numpy view over the backing bytearray."""
        grid = self._nd
        if grid is None:
            grid = _np.frombuffer(self.data, dtype=_np.uint8).reshape(
                self.height, self.width
            )
            self._nd = grid
        return grid

    # -- mutation -----------------------------------------------------------

    def clear(self) -> None:
        """Zero the whole buffer (full recompose start state)."""
        if self.use_numpy:
            self._grid()[:] = 0
        else:
            self.data[:] = bytes(len(self.data))
        self.epoch += 1

    def blit(
        self,
        wx: int,
        wy: int,
        stride: int,
        content,
        rx: int,
        ry: int,
        rw: int,
        rh: int,
    ) -> bool:
        """Copy a window-local rect of *content* onto the screen.

        ``(wx, wy)`` is the window origin in screen coordinates, ``stride``
        its row width.  ``(rx, ry, rw, rh)`` select the window-local rect
        to copy (already clipped to the window).  The destination is
        clipped to the screen; source cells beyond ``len(content)`` are
        zero-extended.  Returns True when any cell was written.
        """
        sx = wx + rx
        sy = wy + ry
        if sx < 0:
            rw += sx
            rx -= sx
            sx = 0
        if sy < 0:
            rh += sy
            ry -= sy
            sy = 0
        width = self.width
        if sx + rw > width:
            rw = width - sx
        if sy + rh > self.height:
            rh = self.height - sy
        if rw <= 0 or rh <= 0:
            return False
        clen = len(content)
        src = ry * stride + rx
        if (
            self.use_numpy
            and rh >= _NUMPY_MIN_ROWS
            and src + (rh - 1) * stride + rw <= clen
        ):
            # All source rows lie inside the content buffer: one strided 2D
            # copy, no zero-extension bookkeeping.
            flat = _np.frombuffer(content, dtype=_np.uint8)
            rows = _np.lib.stride_tricks.as_strided(
                flat[src:], shape=(rh, rw), strides=(stride, 1)
            )
            self._grid()[sy : sy + rh, sx : sx + rw] = rows
            self.epoch += 1
            return True
        data = self.data
        dst = sy * width + sx
        for _ in range(rh):
            end = src + rw
            if end <= clen:
                data[dst : dst + rw] = content[src:end]
            elif src < clen:
                avail = clen - src
                data[dst : dst + avail] = content[src:clen]
                data[dst + avail : dst + rw] = bytes(rw - avail)
            else:
                data[dst : dst + rw] = bytes(rw)
            src += stride
            dst += width
        self.epoch += 1
        return True

    # -- reads --------------------------------------------------------------

    def snapshot(self) -> bytes:
        """An immutable copy of the whole grid, row-major."""
        return bytes(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Framebuffer({self.width}x{self.height}, "
            f"numpy={'on' if self.use_numpy else 'off'}, epoch={self.epoch})"
        )
