"""Hardware input device drivers.

These are the *only* sources of events with
:attr:`~repro.xserver.events.EventProvenance.HARDWARE` provenance.  The
server hands out an injection capability when a driver is attached at
machine-assembly time; application code never holds one, so it cannot mint
authentic events -- the construction-time equivalent of the paper's
assumption that "user inputs that originate from hardware attached to the
system should be considered authentic" while everything programmatic is not.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.xserver.events import EventKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.xserver.server import XServer

#: Conventional keycodes used by scenarios (a tiny keymap).
KEYCODE_ENTER = 36
KEYCODE_C = 54
KEYCODE_V = 55
KEYCODE_PRINTSCREEN = 107
MODIFIER_CTRL = 1 << 2


class HardwareKeyboard:
    """A physical keyboard.

    ``press``/``type_text`` inject authentic key events routed to the
    current input focus.
    """

    def __init__(self, server: "XServer", name: str = "kbd0") -> None:
        self.name = name
        self._server = server
        self._token = server.attach_input_driver(self)

    def press(self, keycode: int, modifiers: int = 0) -> None:
        """Press and release one key."""
        self._server.inject_hardware_key(self._token, EventKind.KEY_PRESS, keycode, modifiers)
        self._server.inject_hardware_key(self._token, EventKind.KEY_RELEASE, keycode, modifiers)

    def combo(self, keycode: int, modifiers: int = MODIFIER_CTRL) -> None:
        """A modifier combo (e.g. Ctrl+V for paste)."""
        self.press(keycode, modifiers)

    def type_text(self, text: str) -> None:
        """Type a string: one press/release pair per character.

        Characters are mapped to pseudo-keycodes (offset from 'a'); the
        simulation does not need a real keymap, only distinct events.
        """
        for char in text:
            self.press(1000 + ord(char))


class HardwareMouse:
    """A physical pointer device."""

    def __init__(self, server: "XServer", name: str = "mouse0") -> None:
        self.name = name
        self._server = server
        self._token = server.attach_input_driver(self)
        self.x = 0
        self.y = 0

    def move_to(self, x: int, y: int) -> None:
        """Absolute pointer motion."""
        self.x = x
        self.y = y
        self._server.inject_hardware_motion(self._token, x, y)

    def click(self, x: Optional[int] = None, y: Optional[int] = None, button: int = 1) -> None:
        """Move (optionally) and click a button."""
        if x is not None and y is not None:
            self.move_to(x, y)
        self._server.inject_hardware_button(self._token, EventKind.BUTTON_PRESS, self.x, self.y, button)
        self._server.inject_hardware_button(self._token, EventKind.BUTTON_RELEASE, self.x, self.y, button)

    def click_window(self, window: object, button: int = 1) -> None:
        """Click the centre of *window* (scenario convenience)."""
        geometry = window.geometry  # type: ignore[attr-defined]
        self.click(geometry.x + geometry.width // 2, geometry.y + geometry.height // 2, button)
