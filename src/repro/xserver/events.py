"""X event types and input-event provenance.

The heart of Overhaul's trusted input path (Section IV-A) is being able to
answer "did this event come from hardware?".  Two injection facilities
exist:

- ``SendEvent`` -- core protocol; events *must* carry a synthetic flag, so
  filtering "is a matter of checking for the presence of this flag";
- ``XTestFakeInput`` -- the XTest extension; no flag exists, so the paper
  "modif[ied] the X server to tag events with the extension or driver that
  generated the event".

:class:`EventProvenance` is that tag, attached at the only places events can
be created: the hardware input drivers, the SendEvent handler, and the
XTest handler.  Application code cannot mint a HARDWARE provenance -- the
server-side injection APIs set it based on *which code path* the event
entered through, reproducing the generalising provenance mechanism.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Dict, Optional

from repro.sim.time import Timestamp


class EventProvenance(enum.Enum):
    """Where an event object was minted."""

    HARDWARE = "hardware"  # a physical input device driver
    SEND_EVENT = "send-event"  # core-protocol SendEvent (synthetic flag set)
    XTEST = "xtest"  # XTestFakeInput injection
    SERVER = "server"  # server-generated protocol events

    @property
    def is_user_authentic(self) -> bool:
        """True only for events a real user produced on real hardware."""
        return self is EventProvenance.HARDWARE


class EventKind(enum.Enum):
    """Event types the simulation models."""

    KEY_PRESS = "key-press"
    KEY_RELEASE = "key-release"
    BUTTON_PRESS = "button-press"
    BUTTON_RELEASE = "button-release"
    MOTION = "motion"
    EXPOSE = "expose"
    SELECTION_REQUEST = "selection-request"
    SELECTION_NOTIFY = "selection-notify"
    SELECTION_CLEAR = "selection-clear"
    PROPERTY_NOTIFY = "property-notify"
    MAP_NOTIFY = "map-notify"
    UNMAP_NOTIFY = "unmap-notify"
    CLIENT_MESSAGE = "client-message"

    @property
    def is_input(self) -> bool:
        """True for the device-input event kinds."""
        return self in _INPUT_KINDS


#: Membership set for :attr:`EventKind.is_input` -- the property is on the
#: selection/input hot paths, so the tuple is built once, not per call.
_INPUT_KINDS = frozenset(
    (
        EventKind.KEY_PRESS,
        EventKind.KEY_RELEASE,
        EventKind.BUTTON_PRESS,
        EventKind.BUTTON_RELEASE,
        EventKind.MOTION,
    )
)

_event_serials = itertools.count(1)


class XEvent:
    """One event as queued to a client.

    ``synthetic_flag`` is the on-the-wire SendEvent marker (always True for
    SEND_EVENT provenance -- the protocol forces it); ``provenance`` is
    Overhaul's server-internal tag and is never visible to clients.

    A plain ``__slots__`` class rather than a dataclass: every clipboard
    round trip mints four of these, every capture and input event one more,
    so construction cost is squarely on the Table I hot paths.
    """

    __slots__ = (
        "kind",
        "timestamp",
        "provenance",
        "window_id",
        "detail",
        "x",
        "y",
        "payload",
        "serial",
    )

    def __init__(
        self,
        kind: EventKind,
        timestamp: Timestamp,
        provenance: EventProvenance,
        window_id: Optional[int] = None,
        detail: Optional[int] = None,  # keycode or button number
        x: int = 0,
        y: int = 0,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.kind = kind
        self.timestamp = timestamp
        self.provenance = provenance
        self.window_id = window_id
        self.detail = detail
        self.x = x
        self.y = y
        self.payload = payload if payload is not None else {}
        self.serial = next(_event_serials)

    @property
    def synthetic_flag(self) -> bool:
        """The client-visible SendEvent synthetic marker."""
        return self.provenance is EventProvenance.SEND_EVENT

    @property
    def is_authentic_input(self) -> bool:
        """True iff this is a hardware-generated input event."""
        return self.kind.is_input and self.provenance.is_user_authentic

    def __repr__(self) -> str:
        return (
            f"XEvent({self.kind.value}, t={self.timestamp}, "
            f"prov={self.provenance.value}, win={self.window_id})"
        )
