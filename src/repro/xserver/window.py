"""Windows, pixmaps, and the stacking order.

Windows matter to Overhaul in three ways:

1. **Clickjacking defence** (Section IV-A): interaction notifications are
   generated only "if the X client receiving the event has a valid mapped
   window that has stayed visible above a predefined time threshold" --
   hence every window records ``visible_since``.
2. **Display-content mediation**: windows own their rendered content, which
   ``GetImage``/``CopyArea`` read; ownership is what the CopyArea
   same-owner check compares.
3. **Event routing**: button events go to the topmost mapped window under
   the pointer; stacking order determines "topmost".

Pixmaps are offscreen drawables (CopyArea sources/destinations).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.time import NEVER, Timestamp
from repro.xserver.errors import BadValue


@dataclass
class Geometry:
    """Window position and size in root coordinates."""

    x: int
    y: int
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise BadValue(f"window dimensions must be positive: {self}")

    def contains(self, x: int, y: int) -> bool:
        """True if the point lies inside this rectangle."""
        return self.x <= x < self.x + self.width and self.y <= y < self.y + self.height


_drawable_ids = itertools.count(0x40_0000)


class Drawable:
    """Anything with content bytes: a window or a pixmap.

    Every drawable carries a **damage counter**: a generation number bumped
    by any content mutation.  The damage counter is what makes the
    display-pipeline caches safe -- an immutable ``bytes`` snapshot of the
    content (:meth:`content_bytes`) and the server's composition cache are
    both keyed on it, so a stale frame can never be served after a paint.
    """

    def __init__(self, owner_client_id: int) -> None:
        self.drawable_id = next(_drawable_ids)
        self.owner_client_id = owner_client_id
        self.content = bytearray()
        #: Content generation; bumped by every draw/append.
        self.damage = 0
        self._content_cache: Optional[bytes] = None
        self._content_cache_damage = -1

    def mark_damaged(self) -> None:
        """Record a content mutation (invalidates cached snapshots)."""
        self.damage += 1
        self._content_cache = None

    def draw(self, data: bytes) -> None:
        """Replace the drawable's content (a paint operation)."""
        self.content = bytearray(data)
        self.mark_damaged()

    def append(self, data: bytes) -> None:
        """Append to the drawable's content (incremental painting)."""
        self.content.extend(data)
        self.mark_damaged()

    def content_bytes(self) -> bytes:
        """An immutable snapshot of the content, cached per damage epoch.

        Repeat reads of an undamaged drawable return the *same* ``bytes``
        object -- the zero-copy handoff GetImage/CopyArea fast paths use.
        The snapshot is immutable, so sharing it with clients is safe.
        """
        cached = self._content_cache
        if cached is None or self._content_cache_damage != self.damage:
            cached = bytes(self.content)
            self._content_cache = cached
            self._content_cache_damage = self.damage
        return cached


class Pixmap(Drawable):
    """An offscreen buffer owned by a client."""

    def __repr__(self) -> str:
        return f"Pixmap(id={self.drawable_id:#x}, owner={self.owner_client_id})"


class Window(Drawable):
    """An on-screen window."""

    def __init__(
        self,
        owner_client_id: int,
        geometry: Geometry,
        title: str = "",
    ) -> None:
        super().__init__(owner_client_id)
        self.geometry = geometry
        self.title = title
        #: Render generation: bumped by content damage *and* by the
        #: visibility/metadata events the server reports (map, unmap,
        #: raise, property-backed content changes).  The composition cache
        #: keys on it, so any of those events busts a cached screen.
        self.render_generation = 0
        self.mapped = False
        #: When the window last became visible; NEVER while unmapped.
        #: This timestamp drives the clickjacking visibility threshold.
        self.visible_since: Timestamp = NEVER
        #: Window properties (ICCCM): name -> bytes.
        self.properties: Dict[str, bytes] = {}
        #: Clients subscribed to PropertyNotify on this window (client ids).
        self.property_subscribers: List[int] = []
        #: Transparent windows pass clicks through (input region empty):
        #: the classic clickjacking overlay trick.
        self.transparent = False

    def mark_damaged(self) -> None:
        super().mark_damaged()
        self.render_generation += 1

    def note_state_change(self) -> None:
        """A non-content event that still invalidates composed frames:
        map/unmap/raise or a property-backed content change."""
        self.render_generation += 1

    def visible_duration(self, now: Timestamp) -> Timestamp:
        """How long the window has been continuously visible."""
        if not self.mapped or self.visible_since == NEVER:
            return 0
        return now - self.visible_since

    def __repr__(self) -> str:
        state = "mapped" if self.mapped else "unmapped"
        return (
            f"Window(id={self.drawable_id:#x}, owner={self.owner_client_id}, "
            f"{state}, title={self.title!r})"
        )


class StackingOrder:
    """Bottom-to-top list of mapped windows.

    The structural **generation** counter is bumped by every membership or
    order change (map, unmap, raise, lower); together with the per-window
    render generations it forms the composition-cache key.
    """

    def __init__(self) -> None:
        self._stack: List[Window] = []
        #: Bumped on any membership/order change.
        self.generation = 0

    def add_top(self, window: Window) -> None:
        """Map: new windows appear on top."""
        if window not in self._stack:
            self._stack.append(window)
            self.generation += 1

    def remove(self, window: Window) -> None:
        """Unmap/destroy."""
        if window in self._stack:
            self._stack.remove(window)
            self.generation += 1

    def raise_window(self, window: Window) -> None:
        """XRaiseWindow."""
        if window in self._stack:
            self._stack.remove(window)
            self._stack.append(window)
            self.generation += 1

    def lower_window(self, window: Window) -> None:
        """XLowerWindow."""
        if window in self._stack:
            self._stack.remove(window)
            self._stack.insert(0, window)
            self.generation += 1

    def render_key(self) -> tuple:
        """The per-window render generations, in composition order.

        Combined with :attr:`generation` this changes whenever the composed
        screen could differ: content damage, property-backed changes, and
        stack mutations all feed into it.
        """
        return tuple(w.render_generation for w in self._stack)

    def bottom_to_top(self) -> List[Window]:
        """Snapshot in composition order."""
        return list(self._stack)

    def top_to_bottom(self) -> List[Window]:
        """Snapshot in hit-testing order."""
        return list(reversed(self._stack))

    def topmost_at(self, x: int, y: int, include_transparent: bool = True) -> Optional[Window]:
        """The topmost mapped window containing the point.

        With ``include_transparent=False`` the search skips windows with an
        empty input region -- used to find who *really* gets a click under a
        transparent overlay.
        """
        for window in self.top_to_bottom():
            if not window.geometry.contains(x, y):
                continue
            if window.transparent and not include_transparent:
                continue
            return window
        return None

    def __len__(self) -> int:
        return len(self._stack)
