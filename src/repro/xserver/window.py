"""Windows, pixmaps, and the stacking order.

Windows matter to Overhaul in three ways:

1. **Clickjacking defence** (Section IV-A): interaction notifications are
   generated only "if the X client receiving the event has a valid mapped
   window that has stayed visible above a predefined time threshold" --
   hence every window records ``visible_since``.
2. **Display-content mediation**: windows own their rendered content, which
   ``GetImage``/``CopyArea`` read; ownership is what the CopyArea
   same-owner check compares.
3. **Event routing**: button events go to the topmost mapped window under
   the pointer; stacking order determines "topmost".

Pixmaps are offscreen drawables (CopyArea sources/destinations).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.sim.time import NEVER, Timestamp
from repro.xserver.errors import BadValue


@dataclass
class Geometry:
    """Window position and size in root coordinates."""

    x: int
    y: int
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise BadValue(f"window dimensions must be positive: {self}")

    def contains(self, x: int, y: int) -> bool:
        """True if the point lies inside this rectangle."""
        return self.x <= x < self.x + self.width and self.y <= y < self.y + self.height


class Rect(NamedTuple):
    """A damage rectangle in drawable-local coordinates.

    Rects are half-open (``[x, x+width) x [y, y+height)``) and always
    non-empty once recorded -- zero-area input is rejected at clip time,
    before it can reach the damage machinery.
    """

    x: int
    y: int
    width: int
    height: int

    def overlaps(self, other: "Rect") -> bool:
        """True when the two rects share at least one cell."""
        return (
            self.x < other.x + other.width
            and other.x < self.x + self.width
            and self.y < other.y + other.height
            and other.y < self.y + self.height
        )

    def union(self, other: "Rect") -> "Rect":
        """The bounding rect of both."""
        x = min(self.x, other.x)
        y = min(self.y, other.y)
        right = max(self.x + self.width, other.x + other.width)
        bottom = max(self.y + self.height, other.y + other.height)
        return Rect(x, y, right - x, bottom - y)

    def span(self, stride: int) -> Tuple[int, int]:
        """The half-open byte range this rect covers in row-major content.

        ``stride`` is the drawable's row width in bytes (0 for linear
        drawables, whose rects are single-row byte ranges).
        """
        lo = self.y * stride + self.x
        return lo, (self.y + self.height - 1) * stride + self.x + self.width


#: Pending rects per drawable before damage collapses to one bounding
#: rect.  Keeps per-epoch coalescing O(small-constant) under draw storms.
_MAX_PENDING_RECTS = 8

#: Called with ``(drawable, rects_coalesced)`` on every damage event; the
#: server installs its damage journal here.
DamageSink = Callable[["Drawable", int], None]

_drawable_ids = itertools.count(0x40_0000)


class Drawable:
    """Anything with content bytes: a window or a pixmap.

    Every drawable carries a **damage counter** (a generation number bumped
    by any content mutation) plus the *pending damage rects* recorded since
    the last snapshot refresh.  The counter is what makes the
    display-pipeline caches safe -- an immutable ``bytes`` snapshot of the
    content (:meth:`content_bytes`) and the server's composition cache are
    both keyed on it, so a stale frame can never be served after a paint.
    The rects are what make them *cheap*: a region draw refreshes only the
    dirty byte spans of the snapshot, and the server's incremental
    composition patches only the dirty bands of the cached frame.
    """

    def __init__(self, owner_client_id: int) -> None:
        self.drawable_id = next(_drawable_ids)
        self.owner_client_id = owner_client_id
        self.content = bytearray()
        #: Content generation; bumped by every draw/append.
        self.damage = 0
        #: Dirty rects recorded since the last snapshot refresh, coalesced
        #: on overlap as they arrive.  Empty while ``_damage_full`` covers
        #: everything.
        self.damage_rects: List[Rect] = []
        #: True when pending damage covers the whole content (full draws,
        #: appends, anything that may have changed the content length).
        self._damage_full = False
        #: Damage-journal hook: the server installs a callback here so any
        #: content mutation -- including direct draws that never pass
        #: through a server request -- lands in its incremental-compose
        #: journal.  Called with ``(drawable, rects_coalesced)``.
        self.damage_sink: Optional[DamageSink] = None
        self._content_cache: Optional[bytes] = None
        self._content_cache_damage = -1

    # -- damage geometry ----------------------------------------------------

    def _bounds(self) -> Optional[Tuple[int, int]]:
        """(width, height) clip bounds, or None for linear drawables."""
        return None

    def _stride(self) -> int:
        """Row width in bytes for rect->byte-span mapping (0 = linear)."""
        return 0

    def _clip(self, x: int, y: int, width: int, height: int) -> Optional[Rect]:
        """Clip a requested rect to the drawable; None when nothing is left.

        Zero-area requests and rects entirely outside the bounds clip to
        nothing and are complete no-ops for the caller.
        """
        if x < 0:
            width += x
            x = 0
        if y < 0:
            height += y
            y = 0
        bounds = self._bounds()
        if bounds is not None:
            width = min(width, bounds[0] - x)
            height = min(height, bounds[1] - y)
        else:
            # Linear drawables (pixmaps) are a single unbounded row.
            height = min(height, 1 - y)
        if width <= 0 or height <= 0:
            return None
        return Rect(x, y, width, height)

    def mark_damaged(self, rect: Optional[Rect] = None) -> None:
        """Record a content mutation (invalidates cached snapshots).

        With a rect, the damage is region-granular: the rect is coalesced
        into the pending set (overlapping rects merge into their union)
        and only those spans are refreshed at the next snapshot.  Without
        one the damage covers the whole drawable.  Either way the damage
        counter bumps and the :attr:`damage_sink` (the server's journal)
        is notified.
        """
        coalesced = 0
        if rect is None:
            self._damage_full = True
            if self.damage_rects:
                self.damage_rects.clear()
        elif not self._damage_full:
            rects = self.damage_rects
            merged = rect
            if rects:
                # Merge transitively: the union may overlap rects the
                # original did not.
                changed = True
                while changed and rects:
                    changed = False
                    remaining = []
                    for other in rects:
                        if merged.overlaps(other):
                            merged = merged.union(other)
                            coalesced += 1
                            changed = True
                        else:
                            remaining.append(other)
                    rects = remaining
            rects.append(merged)
            if len(rects) > _MAX_PENDING_RECTS:
                whole = rects[0]
                for other in rects[1:]:
                    whole = whole.union(other)
                    coalesced += 1
                rects = [whole]
            self.damage_rects = rects
        self.damage += 1
        sink = self.damage_sink
        if sink is not None:
            sink(self, coalesced)

    def draw(self, data: bytes) -> None:
        """Replace the drawable's content (a paint operation)."""
        self.content = bytearray(data)
        self.mark_damaged()

    def append(self, data: bytes) -> None:
        """Append to the drawable's content (incremental painting)."""
        self.content.extend(data)
        self.mark_damaged()

    def draw_rect(
        self, x: int, y: int, width: int, height: int, data: bytes
    ) -> Optional[Rect]:
        """Paint a region: write *data* into the rect's byte span.

        The rect is clipped to the drawable bounds; zero-area or fully
        clipped requests are complete no-ops (no damage, no content
        change) and return None.  Content is row-major with the
        drawable's stride; short windows are zero-extended so a rect draw
        beyond the current content length is well defined.  Returns the
        clipped rect that was recorded as damage.
        """
        rect = self._clip(x, y, width, height)
        if rect is None:
            return None
        lo, hi = rect.span(self._stride())
        if len(data) > hi - lo:
            payload = bytes(data[: hi - lo])
        elif type(data) is bytes:
            payload = data
        else:
            payload = bytes(data)
        content = self.content
        end = lo + len(payload)
        if len(content) < end:
            content.extend(b"\x00" * (end - len(content)))
        content[lo:end] = payload
        self.mark_damaged(rect)
        return rect

    def content_bytes(self) -> bytes:
        """An immutable snapshot of the content, cached per damage epoch.

        Repeat reads of an undamaged drawable return the *same* ``bytes``
        object -- the zero-copy handoff GetImage/CopyArea fast paths use.
        When the pending damage is region-granular, the refresh splices
        only the dirty byte spans into the previous snapshot instead of
        recopying the whole content.  The snapshot is immutable, so
        sharing it with clients is safe.
        """
        cached = self._content_cache
        if cached is not None and self._content_cache_damage == self.damage:
            return cached
        content = self.content
        rects = self.damage_rects
        if (
            cached is not None
            and rects
            and not self._damage_full
            and len(cached) == len(content)
        ):
            stride = self._stride()
            size = len(content)
            for rect in rects:
                lo, hi = rect.span(stride)
                if lo >= size:
                    continue
                cached = cached[:lo] + content[lo:hi] + cached[hi:]
            snapshot = cached
        else:
            snapshot = bytes(content)
        if rects:
            rects.clear()
        self._damage_full = False
        self._content_cache = snapshot
        self._content_cache_damage = self.damage
        return snapshot


class Pixmap(Drawable):
    """An offscreen buffer owned by a client."""

    def __repr__(self) -> str:
        return f"Pixmap(id={self.drawable_id:#x}, owner={self.owner_client_id})"


class Window(Drawable):
    """An on-screen window."""

    def __init__(
        self,
        owner_client_id: int,
        geometry: Geometry,
        title: str = "",
    ) -> None:
        super().__init__(owner_client_id)
        self.geometry = geometry
        self.title = title
        #: Render generation: bumped by content damage *and* by the
        #: visibility/metadata events the server reports (map, unmap,
        #: raise, property-backed content changes).  The composition cache
        #: keys on it, so any of those events busts a cached screen.
        self.render_generation = 0
        self.mapped = False
        #: When the window last became visible; NEVER while unmapped.
        #: This timestamp drives the clickjacking visibility threshold.
        self.visible_since: Timestamp = NEVER
        #: Window properties (ICCCM): name -> bytes.
        self.properties: Dict[str, bytes] = {}
        #: Clients subscribed to PropertyNotify on this window (client ids).
        self.property_subscribers: List[int] = []
        #: Transparent windows pass clicks through (input region empty):
        #: the classic clickjacking overlay trick.
        self.transparent = False

    def _bounds(self) -> Optional[Tuple[int, int]]:
        return (self.geometry.width, self.geometry.height)

    def _stride(self) -> int:
        return self.geometry.width

    def mark_damaged(self, rect: Optional[Rect] = None) -> None:
        super().mark_damaged(rect)
        self.render_generation += 1

    def note_state_change(self) -> None:
        """A non-content event that still invalidates composed frames:
        map/unmap/raise or a property-backed content change.

        The damage sink is notified (content is unchanged, so zero rects
        coalesce) because the render generation moved without a stacking
        change -- the incremental compose path discovers the window
        through its journal, re-reads the unchanged band, and leaves the
        frame bytes intact.
        """
        self.render_generation += 1
        sink = self.damage_sink
        if sink is not None:
            sink(self, 0)

    def visible_duration(self, now: Timestamp) -> Timestamp:
        """How long the window has been continuously visible."""
        if not self.mapped or self.visible_since == NEVER:
            return 0
        return now - self.visible_since

    def __repr__(self) -> str:
        state = "mapped" if self.mapped else "unmapped"
        return (
            f"Window(id={self.drawable_id:#x}, owner={self.owner_client_id}, "
            f"{state}, title={self.title!r})"
        )


class StackingOrder:
    """Bottom-to-top list of mapped windows.

    The structural **generation** counter is bumped by every membership or
    order change (map, unmap, raise, lower); together with the per-window
    render generations it forms the composition-cache key.
    """

    def __init__(self) -> None:
        self._stack: List[Window] = []
        #: Bumped on any membership/order change.
        self.generation = 0

    def add_top(self, window: Window) -> None:
        """Map: new windows appear on top."""
        if window not in self._stack:
            self._stack.append(window)
            self.generation += 1

    def remove(self, window: Window) -> None:
        """Unmap/destroy."""
        if window in self._stack:
            self._stack.remove(window)
            self.generation += 1

    def raise_window(self, window: Window) -> None:
        """XRaiseWindow."""
        if window in self._stack:
            self._stack.remove(window)
            self._stack.append(window)
            self.generation += 1

    def lower_window(self, window: Window) -> None:
        """XLowerWindow."""
        if window in self._stack:
            self._stack.remove(window)
            self._stack.insert(0, window)
            self.generation += 1

    def render_key(self) -> tuple:
        """The per-window render generations, in composition order.

        Combined with :attr:`generation` this changes whenever the composed
        screen could differ: content damage, property-backed changes, and
        stack mutations all feed into it.
        """
        return tuple(w.render_generation for w in self._stack)

    def bottom_to_top(self) -> List[Window]:
        """Snapshot in composition order."""
        return list(self._stack)

    def top_to_bottom(self) -> List[Window]:
        """Snapshot in hit-testing order."""
        return list(reversed(self._stack))

    def topmost_at(self, x: int, y: int, include_transparent: bool = True) -> Optional[Window]:
        """The topmost mapped window containing the point.

        With ``include_transparent=False`` the search skips windows with an
        empty input region -- used to find who *really* gets a click under a
        transparent overlay.
        """
        for window in self.top_to_bottom():
            if not window.geometry.contains(x, y):
                continue
            if window.transparent and not include_transparent:
                continue
            return window
        return None

    def __len__(self) -> int:
        return len(self._stack)
