"""Windows, pixmaps, and the stacking order.

Windows matter to Overhaul in three ways:

1. **Clickjacking defence** (Section IV-A): interaction notifications are
   generated only "if the X client receiving the event has a valid mapped
   window that has stayed visible above a predefined time threshold" --
   hence every window records ``visible_since``.
2. **Display-content mediation**: windows own their rendered content, which
   ``GetImage``/``CopyArea`` read; ownership is what the CopyArea
   same-owner check compares.
3. **Event routing**: button events go to the topmost mapped window under
   the pointer; stacking order determines "topmost".

Pixmaps are offscreen drawables (CopyArea sources/destinations).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.time import NEVER, Timestamp
from repro.xserver.errors import BadValue


@dataclass
class Geometry:
    """Window position and size in root coordinates."""

    x: int
    y: int
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise BadValue(f"window dimensions must be positive: {self}")

    def contains(self, x: int, y: int) -> bool:
        """True if the point lies inside this rectangle."""
        return self.x <= x < self.x + self.width and self.y <= y < self.y + self.height


_drawable_ids = itertools.count(0x40_0000)


class Drawable:
    """Anything with content bytes: a window or a pixmap."""

    def __init__(self, owner_client_id: int) -> None:
        self.drawable_id = next(_drawable_ids)
        self.owner_client_id = owner_client_id
        self.content = bytearray()

    def draw(self, data: bytes) -> None:
        """Replace the drawable's content (a paint operation)."""
        self.content = bytearray(data)

    def append(self, data: bytes) -> None:
        """Append to the drawable's content (incremental painting)."""
        self.content.extend(data)


class Pixmap(Drawable):
    """An offscreen buffer owned by a client."""

    def __repr__(self) -> str:
        return f"Pixmap(id={self.drawable_id:#x}, owner={self.owner_client_id})"


class Window(Drawable):
    """An on-screen window."""

    def __init__(
        self,
        owner_client_id: int,
        geometry: Geometry,
        title: str = "",
    ) -> None:
        super().__init__(owner_client_id)
        self.geometry = geometry
        self.title = title
        self.mapped = False
        #: When the window last became visible; NEVER while unmapped.
        #: This timestamp drives the clickjacking visibility threshold.
        self.visible_since: Timestamp = NEVER
        #: Window properties (ICCCM): name -> bytes.
        self.properties: Dict[str, bytes] = {}
        #: Clients subscribed to PropertyNotify on this window (client ids).
        self.property_subscribers: List[int] = []
        #: Transparent windows pass clicks through (input region empty):
        #: the classic clickjacking overlay trick.
        self.transparent = False

    def visible_duration(self, now: Timestamp) -> Timestamp:
        """How long the window has been continuously visible."""
        if not self.mapped or self.visible_since == NEVER:
            return 0
        return now - self.visible_since

    def __repr__(self) -> str:
        state = "mapped" if self.mapped else "unmapped"
        return (
            f"Window(id={self.drawable_id:#x}, owner={self.owner_client_id}, "
            f"{state}, title={self.title!r})"
        )


class StackingOrder:
    """Bottom-to-top list of mapped windows."""

    def __init__(self) -> None:
        self._stack: List[Window] = []

    def add_top(self, window: Window) -> None:
        """Map: new windows appear on top."""
        if window not in self._stack:
            self._stack.append(window)

    def remove(self, window: Window) -> None:
        """Unmap/destroy."""
        if window in self._stack:
            self._stack.remove(window)

    def raise_window(self, window: Window) -> None:
        """XRaiseWindow."""
        if window in self._stack:
            self._stack.remove(window)
            self._stack.append(window)

    def lower_window(self, window: Window) -> None:
        """XLowerWindow."""
        if window in self._stack:
            self._stack.remove(window)
            self._stack.insert(0, window)

    def bottom_to_top(self) -> List[Window]:
        """Snapshot in composition order."""
        return list(self._stack)

    def top_to_bottom(self) -> List[Window]:
        """Snapshot in hit-testing order."""
        return list(reversed(self._stack))

    def topmost_at(self, x: int, y: int, include_transparent: bool = True) -> Optional[Window]:
        """The topmost mapped window containing the point.

        With ``include_transparent=False`` the search skips windows with an
        empty input region -- used to find who *really* gets a click under a
        transparent overlay.
        """
        for window in self.top_to_bottom():
            if not window.geometry.contains(x, y):
                continue
            if window.transparent and not include_transparent:
                continue
            return window
        return None

    def __len__(self) -> int:
        return len(self._stack)
