"""Windows, pixmaps, and the stacking order.

Windows matter to Overhaul in three ways:

1. **Clickjacking defence** (Section IV-A): interaction notifications are
   generated only "if the X client receiving the event has a valid mapped
   window that has stayed visible above a predefined time threshold" --
   hence every window records ``visible_since``.
2. **Display-content mediation**: windows own their rendered content, which
   ``GetImage``/``CopyArea`` read; ownership is what the CopyArea
   same-owner check compares.
3. **Event routing**: button events go to the topmost mapped window under
   the pointer; stacking order determines "topmost".

Pixmaps are offscreen drawables (CopyArea sources/destinations).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.sim.time import NEVER, Timestamp
from repro.xserver.errors import BadValue


@dataclass
class Geometry:
    """Window position and size in root coordinates."""

    x: int
    y: int
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise BadValue(f"window dimensions must be positive: {self}")

    def contains(self, x: int, y: int) -> bool:
        """True if the point lies inside this rectangle."""
        return self.x <= x < self.x + self.width and self.y <= y < self.y + self.height


class Rect(NamedTuple):
    """A damage rectangle in drawable-local coordinates.

    Rects are half-open (``[x, x+width) x [y, y+height)``) and always
    non-empty once recorded -- zero-area input is rejected at clip time,
    before it can reach the damage machinery.
    """

    x: int
    y: int
    width: int
    height: int

    def overlaps(self, other: "Rect") -> bool:
        """True when the two rects share at least one cell."""
        return (
            self.x < other.x + other.width
            and other.x < self.x + self.width
            and self.y < other.y + other.height
            and other.y < self.y + self.height
        )

    def union(self, other: "Rect") -> "Rect":
        """The bounding rect of both."""
        x = min(self.x, other.x)
        y = min(self.y, other.y)
        right = max(self.x + self.width, other.x + other.width)
        bottom = max(self.y + self.height, other.y + other.height)
        return Rect(x, y, right - x, bottom - y)

    def intersect(self, other: "Rect") -> Optional["Rect"]:
        """The overlapping rect, or None when the rects are disjoint."""
        x = max(self.x, other.x)
        y = max(self.y, other.y)
        right = min(self.x + self.width, other.x + other.width)
        bottom = min(self.y + self.height, other.y + other.height)
        if right <= x or bottom <= y:
            return None
        return Rect(x, y, right - x, bottom - y)

    def translate(self, dx: int, dy: int) -> "Rect":
        """The same rect shifted by (dx, dy)."""
        return Rect(self.x + dx, self.y + dy, self.width, self.height)

    def area(self) -> int:
        return self.width * self.height

    def contains_rect(self, other: "Rect") -> bool:
        """True when *other* lies entirely inside this rect."""
        return (
            self.x <= other.x
            and self.y <= other.y
            and self.x + self.width >= other.x + other.width
            and self.y + self.height >= other.y + other.height
        )

    def span(self) -> Tuple[int, int]:
        """The half-open byte range of a **linear** (stride-0) rect.

        Only single-row rects on linear drawables (pixmaps) map to one
        contiguous byte range; a 2D window rect covers ``height``
        *separate* row slices, and collapsing it to one range is exactly
        the bounding-band over-approximation the 2D framebuffer removed.
        Screen-path callers must use per-row blits
        (:meth:`repro.xserver.framebuffer.Framebuffer.blit`); asserting
        single-row-ness here catches any regression to the old behaviour.
        """
        if self.height != 1:
            raise ValueError(
                f"Rect.span() is only defined for single-row linear rects, "
                f"not {self!r}; screen-path callers must use per-row blits"
            )
        return self.x, self.x + self.width


#: Pending rects per drawable before the coalescer starts least-waste
#: pair merging.  Keeps per-epoch coalescing O(small-constant) under draw
#: storms.
_MAX_PENDING_RECTS = 8


def _covered_area(a: Rect, b: Rect) -> int:
    """Cells covered by ``a ∪ b`` as a *region* (inclusion-exclusion)."""
    ow = min(a.x + a.width, b.x + b.width) - max(a.x, b.x)
    oh = min(a.y + a.height, b.y + b.height) - max(a.y, b.y)
    overlap = ow * oh if (ow > 0 and oh > 0) else 0
    return a.width * a.height + b.width * b.height - overlap


def coalesce_rect(rects: List[Rect], rect: Rect, cap: int = _MAX_PENDING_RECTS) -> int:
    """Fold *rect* into the pending set in place; returns merges performed.

    Replaces PR-5's merge-on-overlap + bounding-rect-collapse-at-cap with
    a strategy that keeps narrow rects narrow (scroll bars, drag ghosts,
    cursor columns):

    - a rect equal to the most recent entry counts one merge and leaves
      the set unchanged (the repeat-draw hot shape);
    - **tight unions only**: two rects merge when their bounding union
      covers exactly the cells they already cover (no smear), so row
      bands extend into taller bands and columns stack into columns, but
      a 1-px column never widens into a full-width band;
    - past the cap, the *least-waste* pair merges (the pair whose union
      adds the fewest uncovered cells), repeatedly until within bounds --
      bounded local slack instead of one screen-wide bounding rect.
    """
    if rects and rects[-1] == rect:
        return 1
    merged = 0
    # Tight-union cascade: each merge may enable another.
    changed = True
    while changed:
        changed = False
        for i, other in enumerate(rects):
            union = rect.union(other)
            if union.width * union.height == _covered_area(rect, other):
                del rects[i]
                rect = union
                merged += 1
                changed = True
                break
    rects.append(rect)
    while len(rects) > cap:
        best_waste = None
        best_i = best_j = 0
        best_union = None
        for i in range(len(rects) - 1):
            a = rects[i]
            for j in range(i + 1, len(rects)):
                union = a.union(rects[j])
                waste = union.width * union.height - _covered_area(a, rects[j])
                if best_waste is None or waste < best_waste:
                    best_waste = waste
                    best_i, best_j, best_union = i, j, union
        del rects[best_j]
        rects[best_i] = best_union
        merged += 1
    return merged


#: Called with the drawable on damage events that need journal
#: registration; the server installs its damage journal here.
DamageSink = Callable[["Drawable"], None]

#: Merge-counter cell for drawables not attached to a server: increments
#: land here and are never read.  Keeps the hot path branch-free.
_DISCARD_CELL = [0]

_drawable_ids = itertools.count(0x40_0000)


class Drawable:
    """Anything with content bytes: a window or a pixmap.

    Every drawable carries a **damage counter** (a generation number bumped
    by any content mutation) plus the *pending damage rects* recorded since
    the last snapshot refresh.  The counter is what makes the
    display-pipeline caches safe -- an immutable ``bytes`` snapshot of the
    content (:meth:`content_bytes`) and the server's composition cache are
    both keyed on it, so a stale frame can never be served after a paint.
    The rects are what make them *cheap*: a region draw refreshes only the
    dirty byte spans of the snapshot, and the server's incremental
    composition patches only the dirty bands of the cached frame.
    """

    def __init__(self, owner_client_id: int) -> None:
        self.drawable_id = next(_drawable_ids)
        self.owner_client_id = owner_client_id
        self.content = bytearray()
        #: Content generation; bumped by every draw/append.
        self.damage = 0
        #: Dirty rects recorded since the last snapshot refresh -- the
        #: *snapshot splice* set, maintained only while a snapshot cache
        #: exists to splice into (pure bookkeeping, never counted).
        self.damage_rects: List[Rect] = []
        #: True when pending snapshot damage covers the whole content
        #: (full draws, appends, anything changing the content length).
        self._damage_full = False
        #: Dirty rects since the last screen composition -- the *journal*
        #: set the server's incremental composer consumes and drains.
        #: Pure fast-path bookkeeping: the composer may also stop feeding
        #: it entirely (see :attr:`composer_skip`) once it proves the
        #: drawable invisible.
        self.journal_rects: List[Rect] = []
        #: True when journal damage covers the whole drawable.
        self.journal_full = False
        #: The coalescing buffer behind the ``damage_rects_coalesced``
        #: counter: the last few draw rects since the last full damage.
        #: Mutated *only* by the draw stream (never by composition or
        #: snapshot refreshes), so fast and reference machines -- which see
        #: identical draws -- count identical merges by construction.
        self._coalesce_buf: List[Rect] = []
        #: The server's merge counter cell (a shared one-element list);
        #: kept separate from the sink so merge accounting continues even
        #: when journal registration is skipped.  Unattached drawables
        #: count into the module-level discard cell.
        self._coalesce_cell: List[int] = _DISCARD_CELL
        #: Repeat-draw memo: ``(x, y, width, lo, end, rect)`` of the most
        #: recent single-row draw, valid only while that rect is still the
        #: newest coalescing-buffer entry (so a repeat counts exactly the
        #: one merge ``coalesce_rect`` would) and the content has not been
        #: replaced (full damage clears it).
        self._last_draw: Optional[tuple] = None
        #: Set by the incremental composer once it proves this drawable
        #: invisible (fully occluded, offscreen, or never composed): draws
        #: then skip journal registration entirely.  Sound because every
        #: event that could change visibility (map/unmap/raise/lower)
        #: bumps the stacking generation, which forces a full recompose --
        #: and the recompose both re-reads content directly and clears
        #: this flag for every stacked window.  Never set on the reference
        #: path (it has no composer state).
        self.composer_skip = False
        #: Damage-journal hook: the server installs a callback here so any
        #: content mutation -- including direct draws that never pass
        #: through a server request -- lands in its incremental-compose
        #: journal.  Called with the drawable itself.
        self.damage_sink: Optional[DamageSink] = None
        self._content_cache: Optional[bytes] = None
        self._content_cache_damage = -1

    # -- damage geometry ----------------------------------------------------

    def _bounds(self) -> Optional[Tuple[int, int]]:
        """(width, height) clip bounds, or None for linear drawables."""
        return None

    def _stride(self) -> int:
        """Row width in bytes for rect->byte-span mapping (0 = linear)."""
        return 0

    def _clip(self, x: int, y: int, width: int, height: int) -> Optional[Rect]:
        """Clip a requested rect to the drawable; None when nothing is left.

        Zero-area requests and rects entirely outside the bounds clip to
        nothing and are complete no-ops for the caller.
        """
        if x < 0:
            width += x
            x = 0
        if y < 0:
            height += y
            y = 0
        bounds = self._bounds()
        if bounds is not None:
            width = min(width, bounds[0] - x)
            height = min(height, bounds[1] - y)
        else:
            # Linear drawables (pixmaps) are a single unbounded row.
            height = min(height, 1 - y)
        if width <= 0 or height <= 0:
            return None
        return Rect(x, y, width, height)

    def mark_damaged(self, rect: Optional[Rect] = None) -> None:
        """Record a content mutation (invalidates cached snapshots).

        With a rect, the damage is region-granular: the rect folds into
        the **coalescing buffer** (whose merge count feeds the
        ``damage_rects_coalesced`` counter -- a pure function of the draw
        stream, so fast and reference machines agree exactly), into the
        **journal** set (what the incremental composer patches from,
        unless the composer has proven the drawable invisible), and,
        while a snapshot cache exists, into the **splice** set (what
        :meth:`content_bytes` refreshes from).  Without a rect the damage
        covers the whole drawable.  Either way the damage counter bumps
        and the :attr:`damage_sink` (the server's journal) is notified on
        first pending damage.
        """
        self._last_draw = None
        if rect is None:
            self._damage_full = True
            if self.damage_rects:
                self.damage_rects.clear()
            self._coalesce_buf.clear()
            if not self.composer_skip:
                pending = self.journal_full or bool(self.journal_rects)
                self.journal_full = True
                if self.journal_rects:
                    self.journal_rects.clear()
                self.damage += 1
                if not pending:
                    sink = self.damage_sink
                    if sink is not None:
                        sink(self)
                return
            self.damage += 1
            return
        coalesced = coalesce_rect(self._coalesce_buf, rect)
        if coalesced:
            self._coalesce_cell[0] += coalesced
        if self._content_cache is not None and not self._damage_full:
            coalesce_rect(self.damage_rects, rect)
        self.damage += 1
        if self.composer_skip:
            return
        pending = self.journal_full
        if not pending:
            journal = self.journal_rects
            pending = bool(journal)
            coalesce_rect(journal, rect)
        if not pending:
            sink = self.damage_sink
            if sink is not None:
                sink(self)

    def draw(self, data: bytes) -> None:
        """Replace the drawable's content (a paint operation)."""
        self.content = bytearray(data)
        self.mark_damaged()

    def append(self, data: bytes) -> None:
        """Append to the drawable's content (incremental painting)."""
        self.content.extend(data)
        self.mark_damaged()

    def draw_rect(
        self, x: int, y: int, width: int, height: int, data: bytes
    ) -> Optional[Rect]:
        """Paint a region: write *data* into the rect, row by row.

        The rect is clipped to the drawable bounds; zero-area or fully
        clipped requests are complete no-ops (no damage, no content
        change) and return None.  *data* is row-major at the **rect's**
        width: row ``r`` of the rect takes ``data[r*width:(r+1)*width]``,
        zero-padded when *data* runs short and truncated when it runs
        long.  Only the rect's columns are written -- cells between the
        rect's rows are untouched, unlike the PR-5 span write.  Content
        is zero-extended so a draw beyond the current length is well
        defined.  Returns the clipped rect that was recorded as damage.
        """
        rect = self._clip(x, y, width, height)
        if rect is None:
            return None
        stride = self._stride()
        rw = rect.width
        content = self.content
        if stride == 0:
            # Linear drawables (pixmaps): one contiguous byte range.
            lo, hi = rect.span()
            need = hi - lo
        else:
            lo = rect.y * stride + rect.x
            hi = (rect.y + rect.height - 1) * stride + rect.x + rw
            need = rw * rect.height
        if len(data) == need and type(data) is bytes:
            payload = data
        else:
            payload = bytes(data[:need])
            if len(payload) < need:
                payload = payload + bytes(need - len(payload))
        if len(content) < hi:
            content.extend(bytes(hi - len(content)))
        if stride == 0 or rect.height == 1:
            content[lo:hi] = payload
        else:
            src = 0
            for _ in range(rect.height):
                content[lo : lo + rw] = payload[src : src + rw]
                lo += stride
                src += rw
        self.mark_damaged(rect)
        return rect

    def content_bytes(self) -> bytes:
        """An immutable snapshot of the content, cached per damage epoch.

        Repeat reads of an undamaged drawable return the *same* ``bytes``
        object -- the zero-copy handoff GetImage/CopyArea fast paths use.
        When the pending damage is region-granular, the refresh splices
        only the dirty byte spans into the previous snapshot instead of
        recopying the whole content.  The snapshot is immutable, so
        sharing it with clients is safe.
        """
        cached = self._content_cache
        if cached is not None and self._content_cache_damage == self.damage:
            return cached
        content = self.content
        rects = self.damage_rects
        if (
            cached is not None
            and rects
            and not self._damage_full
            and len(cached) == len(content)
        ):
            # Row-granular refresh: copy back exactly the dirty rows of
            # each pending rect (the 2D analogue of the PR-5 span splice,
            # without the bounding-band over-copy between rows).
            stride = self._stride()
            size = len(content)
            buf = bytearray(cached)
            for rect in rects:
                if stride == 0:
                    off = rect.x
                    rows = 1
                else:
                    off = rect.y * stride + rect.x
                    rows = rect.height
                rw = rect.width
                for _ in range(rows):
                    if off >= size:
                        break
                    end = off + rw
                    if end > size:
                        end = size
                    buf[off:end] = content[off:end]
                    off += stride
            snapshot = bytes(buf)
        else:
            snapshot = bytes(content)
        if rects:
            rects.clear()
        self._damage_full = False
        self._content_cache = snapshot
        self._content_cache_damage = self.damage
        return snapshot


class Pixmap(Drawable):
    """An offscreen buffer owned by a client."""

    def __repr__(self) -> str:
        return f"Pixmap(id={self.drawable_id:#x}, owner={self.owner_client_id})"


class Window(Drawable):
    """An on-screen window."""

    def __init__(
        self,
        owner_client_id: int,
        geometry: Geometry,
        title: str = "",
    ) -> None:
        super().__init__(owner_client_id)
        self.geometry = geometry
        self.title = title
        #: Render generation: bumped by content damage *and* by the
        #: visibility/metadata events the server reports (map, unmap,
        #: raise, property-backed content changes).  The composition cache
        #: keys on it, so any of those events busts a cached screen.
        self.render_generation = 0
        self.mapped = False
        #: When the window last became visible; NEVER while unmapped.
        #: This timestamp drives the clickjacking visibility threshold.
        self.visible_since: Timestamp = NEVER
        #: Window properties (ICCCM): name -> bytes.
        self.properties: Dict[str, bytes] = {}
        #: Clients subscribed to PropertyNotify on this window (client ids).
        self.property_subscribers: List[int] = []
        #: Transparent windows pass clicks through (input region empty):
        #: the classic clickjacking overlay trick.
        self.transparent = False

    def _bounds(self) -> Optional[Tuple[int, int]]:
        return (self.geometry.width, self.geometry.height)

    def _stride(self) -> int:
        return self.geometry.width

    def draw_rect(
        self, x: int, y: int, width: int, height: int, data: bytes
    ) -> Optional[Rect]:
        """Region paint with an inlined fast path for the hot shape.

        In-bounds single-row writes with an exact-length payload (cursor
        blinks, scroll lines, animation bands -- every compose benchmark's
        inner loop) skip the generic clip/pad machinery and the
        ``mark_damaged`` call chain; the bookkeeping below is line-for-line
        what the generic path performs for this shape, so the two are
        indistinguishable (the differential suite drives both).  Every
        other shape falls through to :meth:`Drawable.draw_rect`.
        """
        memo = self._last_draw
        if (
            memo is not None
            and height == 1
            and memo[0] == x
            and memo[1] == y
            and memo[2] == width
            and type(data) is bytes
            and len(data) == width
        ):
            # Repeat of the previous draw: the clip arithmetic, the Rect,
            # and the coalescing outcome (one merge -- ``coalesce_rect``'s
            # repeat-draw branch) are all memoized.  The memo is dropped
            # by any other damage, so this is observably the generic path.
            rect = memo[5]
            self.content[memo[3] : memo[4]] = data
            self.damage += 1
            self.render_generation += 1
            self._coalesce_cell[0] += 1
            if self._content_cache is not None and not self._damage_full:
                coalesce_rect(self.damage_rects, rect)
            if self.composer_skip:
                return rect
            pending = self.journal_full
            if not pending:
                journal = self.journal_rects
                pending = bool(journal)
                coalesce_rect(journal, rect)
            if not pending:
                sink = self.damage_sink
                if sink is not None:
                    sink(self)
            return rect
        geometry = self.geometry
        if (
            height == 1
            and 0 <= y < geometry.height
            and x >= 0
            and width > 0
            and x + width <= geometry.width
            and len(data) == width
            and type(data) is bytes
        ):
            lo = y * geometry.width + x
            end = lo + width
            content = self.content
            if len(content) < end:
                content.extend(bytes(end - len(content)))
            content[lo:end] = data
            self.damage += 1
            self.render_generation += 1
            rect = Rect(x, y, width, 1)
            buf = self._coalesce_buf
            coalesced = coalesce_rect(buf, rect)
            if coalesced:
                self._coalesce_cell[0] += coalesced
            if buf[-1] == rect:
                # The rect survived coalescing as the newest entry: a
                # repeat of this exact draw may take the memoized lane.
                self._last_draw = (x, y, width, lo, end, rect)
            else:
                self._last_draw = None
            if self._content_cache is not None and not self._damage_full:
                coalesce_rect(self.damage_rects, rect)
            if self.composer_skip:
                return rect
            pending = self.journal_full
            if not pending:
                journal = self.journal_rects
                pending = bool(journal)
                coalesce_rect(journal, rect)
            if not pending:
                sink = self.damage_sink
                if sink is not None:
                    sink(self)
            return rect
        return Drawable.draw_rect(self, x, y, width, height, data)

    def screen_rect(self, screen_width: int, screen_height: int) -> Optional[Rect]:
        """The window's geometry clipped to the screen, or None offscreen."""
        geometry = self.geometry
        x = max(geometry.x, 0)
        y = max(geometry.y, 0)
        right = min(geometry.x + geometry.width, screen_width)
        bottom = min(geometry.y + geometry.height, screen_height)
        if right <= x or bottom <= y:
            return None
        return Rect(x, y, right - x, bottom - y)

    def mark_damaged(self, rect: Optional[Rect] = None) -> None:
        super().mark_damaged(rect)
        self.render_generation += 1

    def note_state_change(self) -> None:
        """A non-content event that still invalidates composed frames:
        map/unmap/raise or a property-backed content change.

        The damage sink is notified (content is unchanged, so no rects
        coalesce) because the render generation moved without a stacking
        change -- the incremental compose path discovers the window
        through its journal, re-reads the unchanged band, and leaves the
        frame bytes intact.  A window the composer has already proven
        invisible skips the registration: the event cannot move a pixel
        while the stacking order holds, and anything that could make the
        window visible again forces a full recompose first.
        """
        self.render_generation += 1
        if self.composer_skip:
            return
        sink = self.damage_sink
        if sink is not None:
            sink(self)

    def visible_duration(self, now: Timestamp) -> Timestamp:
        """How long the window has been continuously visible."""
        if not self.mapped or self.visible_since == NEVER:
            return 0
        return now - self.visible_since

    def __repr__(self) -> str:
        state = "mapped" if self.mapped else "unmapped"
        return (
            f"Window(id={self.drawable_id:#x}, owner={self.owner_client_id}, "
            f"{state}, title={self.title!r})"
        )


class StackingOrder:
    """Bottom-to-top list of mapped windows.

    The structural **generation** counter is bumped by every membership or
    order change (map, unmap, raise, lower); together with the per-window
    render generations it forms the composition-cache key.
    """

    def __init__(self) -> None:
        self._stack: List[Window] = []
        #: Bumped on any membership/order change.
        self.generation = 0

    def add_top(self, window: Window) -> None:
        """Map: new windows appear on top."""
        if window not in self._stack:
            self._stack.append(window)
            self.generation += 1

    def remove(self, window: Window) -> None:
        """Unmap/destroy."""
        if window in self._stack:
            self._stack.remove(window)
            self.generation += 1

    def raise_window(self, window: Window) -> None:
        """XRaiseWindow."""
        if window in self._stack:
            self._stack.remove(window)
            self._stack.append(window)
            self.generation += 1

    def lower_window(self, window: Window) -> None:
        """XLowerWindow."""
        if window in self._stack:
            self._stack.remove(window)
            self._stack.insert(0, window)
            self.generation += 1

    def render_key(self) -> tuple:
        """The per-window render generations, in composition order.

        Combined with :attr:`generation` this changes whenever the composed
        screen could differ: content damage, property-backed changes, and
        stack mutations all feed into it.
        """
        return tuple(w.render_generation for w in self._stack)

    def bottom_to_top(self) -> List[Window]:
        """Snapshot in composition order."""
        return list(self._stack)

    def top_to_bottom(self) -> List[Window]:
        """Snapshot in hit-testing order."""
        return list(reversed(self._stack))

    def topmost_at(self, x: int, y: int, include_transparent: bool = True) -> Optional[Window]:
        """The topmost mapped window containing the point.

        With ``include_transparent=False`` the search skips windows with an
        empty input region -- used to find who *really* gets a click under a
        transparent overlay.
        """
        for window in self.top_to_bottom():
            if not window.geometry.contains(x, y):
                continue
            if window.transparent and not include_transparent:
                continue
            return window
        return None

    def __len__(self) -> int:
        return len(self._stack)
