"""Selection (clipboard) state: owners and in-flight transfers.

X has no central clipboard; copy & paste is the inter-client protocol of
Figure 6 (ICCCM).  This module holds the server's bookkeeping:

- :class:`Selection` -- who currently owns a selection atom;
- :class:`PendingTransfer` -- one in-flight ConvertSelection round trip.

The transfer state machine is what lets the modified server (a) validate
that a ``SendEvent(SelectionNotify)`` matches a legitimate transfer rather
than a protocol-bypass attempt, and (b) protect the in-flight property data
from snooping ("OVERHAUL ensures that such events are only delivered to the
paste target while the clipboard data is in flight", Section IV-A).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.time import Timestamp

#: The selection atoms scenarios use.
CLIPBOARD = "CLIPBOARD"
PRIMARY = "PRIMARY"


@dataclass
class Selection:
    """Current ownership of one selection atom."""

    name: str
    owner_client_id: int
    owner_window_id: int
    acquired_at: Timestamp


class TransferState(enum.Enum):
    """Lifecycle of a ConvertSelection round trip (Figure 6 steps 6-13)."""

    REQUESTED = "requested"  # ConvertSelection accepted, owner notified (7)
    DATA_STORED = "data-stored"  # owner wrote the property (8)
    NOTIFIED = "notified"  # SelectionNotify sent to requestor (9-10)
    COMPLETED = "completed"  # requestor fetched and deleted the data (11-13)
    FAILED = "failed"


_transfer_ids = itertools.count(1)


@dataclass
class PendingTransfer:
    """One in-flight clipboard data transfer."""

    selection_name: str
    owner_client_id: int
    requestor_client_id: int
    requestor_window_id: int
    property_name: str
    target: str
    started_at: Timestamp
    state: TransferState = TransferState.REQUESTED
    transfer_id: int = field(default_factory=lambda: next(_transfer_ids))

    @property
    def in_flight(self) -> bool:
        """True while the property data needs snooping protection."""
        return self.state in (TransferState.DATA_STORED, TransferState.NOTIFIED)


class SelectionSubsystem:
    """Registry of selections and pending transfers."""

    def __init__(self) -> None:
        self._selections: Dict[str, Selection] = {}
        self._transfers: List[PendingTransfer] = []
        self.completed_transfers = 0
        self.failed_transfers = 0

    # -- ownership ---------------------------------------------------------

    def owner_of(self, name: str) -> Optional[Selection]:
        return self._selections.get(name)

    def set_owner(self, selection: Selection) -> Optional[Selection]:
        """Record new ownership; returns the previous owner (for
        SelectionClear delivery), if any."""
        previous = self._selections.get(selection.name)
        self._selections[selection.name] = selection
        return previous

    def clear_owner(self, name: str) -> None:
        self._selections.pop(name, None)

    # -- transfers -----------------------------------------------------------

    def start_transfer(self, transfer: PendingTransfer) -> PendingTransfer:
        self._transfers.append(transfer)
        return transfer

    def active_transfers(self) -> List[PendingTransfer]:
        """Transfers not yet completed or failed."""
        return [
            t
            for t in self._transfers
            if t.state not in (TransferState.COMPLETED, TransferState.FAILED)
        ]

    def find_transfer(
        self,
        owner_client_id: Optional[int] = None,
        requestor_window_id: Optional[int] = None,
        property_name: Optional[str] = None,
    ) -> Optional[PendingTransfer]:
        """Locate the newest matching active transfer."""
        for transfer in reversed(self.active_transfers()):
            if owner_client_id is not None and transfer.owner_client_id != owner_client_id:
                continue
            if (
                requestor_window_id is not None
                and transfer.requestor_window_id != requestor_window_id
            ):
                continue
            if property_name is not None and transfer.property_name != property_name:
                continue
            return transfer
        return None

    def guarded_transfer_for(
        self, window_id: int, property_name: str
    ) -> Optional[PendingTransfer]:
        """The in-flight transfer protecting (window, property), if any."""
        for transfer in self.active_transfers():
            if (
                transfer.in_flight
                and transfer.requestor_window_id == window_id
                and transfer.property_name == property_name
            ):
                return transfer
        return None

    def complete(self, transfer: PendingTransfer) -> None:
        transfer.state = TransferState.COMPLETED
        self.completed_transfers += 1
        self._prune(transfer)

    def fail(self, transfer: PendingTransfer) -> None:
        transfer.state = TransferState.FAILED
        self.failed_transfers += 1
        self._prune(transfer)

    def _prune(self, transfer: PendingTransfer) -> None:
        """Drop a finished transfer so the active scan stays O(in-flight).

        Benchmark workloads run hundreds of thousands of pastes; keeping
        finished transfers would make every protocol step a linear scan
        over history.
        """
        try:
            self._transfers.remove(transfer)
        except ValueError:
            pass
