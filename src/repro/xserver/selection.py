"""Selection (clipboard) state: owners and in-flight transfers.

X has no central clipboard; copy & paste is the inter-client protocol of
Figure 6 (ICCCM).  This module holds the server's bookkeeping:

- :class:`Selection` -- who currently owns a selection atom;
- :class:`PendingTransfer` -- one in-flight ConvertSelection round trip.

The transfer state machine is what lets the modified server (a) validate
that a ``SendEvent(SelectionNotify)`` matches a legitimate transfer rather
than a protocol-bypass attempt, and (b) protect the in-flight property data
from snooping ("OVERHAUL ensures that such events are only delivered to the
paste target while the clipboard data is in flight", Section IV-A).

Hot-path structure (the clipboard rows of Table I hammer this module):

- the transfer list holds *only* live transfers -- completion and failure
  prune eagerly, and all state changes go through :meth:`mark_data_stored`
  / :meth:`mark_notified`, so every lookup is O(in-flight), which is O(1)
  for real clipboard traffic;
- in-flight transfers are additionally indexed by (requestor window,
  property), making the snooping-protection lookup -- three per paste --
  a dict hit instead of a scan;
- repeat ``ConvertSelection`` round trips for the same (selection, owner,
  requestor, window, property, target) tuple can **reuse** the retired
  transfer record and its request payload via :meth:`begin_transfer`
  (``reuse=True``), skipping the per-conversion allocation entirely when
  the owner's buffer arrangement has not changed.  Reuse is driven by the
  server's ``fast_display`` switch and is observably equivalent to fresh
  allocation (same field values, same fresh transfer id).
"""

from __future__ import annotations

import enum
import itertools
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim.time import Timestamp

#: The selection atoms scenarios use.
CLIPBOARD = "CLIPBOARD"
PRIMARY = "PRIMARY"

#: Retired-transfer pool bound.  Eviction is LRU (least-recently completed
#: or reused), never a wholesale clear, so fleet-scale workloads cycling
#: through more than this many distinct clipboard pairs keep their hot
#: working set poolable.
_REUSE_POOL_LIMIT = 1024


@dataclass
class Selection:
    """Current ownership of one selection atom."""

    name: str
    owner_client_id: int
    owner_window_id: int
    acquired_at: Timestamp


class TransferState(enum.Enum):
    """Lifecycle of a ConvertSelection round trip (Figure 6 steps 6-13)."""

    REQUESTED = "requested"  # ConvertSelection accepted, owner notified (7)
    DATA_STORED = "data-stored"  # owner wrote the property (8)
    NOTIFIED = "notified"  # SelectionNotify sent to requestor (9-10)
    COMPLETED = "completed"  # requestor fetched and deleted the data (11-13)
    FAILED = "failed"


_transfer_ids = itertools.count(1)

#: Aliases for :attr:`PendingTransfer.in_flight` -- checked several times
#: per paste, so identity comparisons beat hashing enum members.
_DATA_STORED = TransferState.DATA_STORED
_NOTIFIED = TransferState.NOTIFIED


class PendingTransfer:
    """One in-flight clipboard data transfer.

    A plain ``__slots__`` class (not a dataclass): one is created -- or
    recycled -- per paste, on the hottest clipboard path in the system.
    """

    __slots__ = (
        "selection_name",
        "owner_client_id",
        "requestor_client_id",
        "requestor_window_id",
        "property_name",
        "target",
        "started_at",
        "state",
        "transfer_id",
        "request_payload",
    )

    def __init__(
        self,
        selection_name: str,
        owner_client_id: int,
        requestor_client_id: int,
        requestor_window_id: int,
        property_name: str,
        target: str,
        started_at: Timestamp,
        state: TransferState = TransferState.REQUESTED,
    ) -> None:
        self.selection_name = selection_name
        self.owner_client_id = owner_client_id
        self.requestor_client_id = requestor_client_id
        self.requestor_window_id = requestor_window_id
        self.property_name = property_name
        self.target = target
        self.started_at = started_at
        self.state = state
        self.transfer_id = next(_transfer_ids)
        #: The SelectionRequest payload the server built for this transfer;
        #: cached here so a reused transfer also reuses the dict.
        self.request_payload: Optional[dict] = None

    @property
    def in_flight(self) -> bool:
        """True while the property data needs snooping protection."""
        state = self.state
        return state is _DATA_STORED or state is _NOTIFIED

    def _reuse_key(self) -> tuple:
        return (
            self.selection_name,
            self.owner_client_id,
            self.requestor_client_id,
            self.requestor_window_id,
            self.property_name,
            self.target,
        )

    def __repr__(self) -> str:
        return (
            f"PendingTransfer(id={self.transfer_id}, "
            f"selection={self.selection_name!r}, state={self.state.value})"
        )


class SelectionSubsystem:
    """Registry of selections and pending transfers."""

    def __init__(self) -> None:
        self._selections: Dict[str, Selection] = {}
        #: Live transfers only -- completion/failure prune eagerly.
        self._transfers: List[PendingTransfer] = []
        #: (requestor_window_id, property_name) -> in-flight transfers.
        self._in_flight: Dict[Tuple[int, str], List[PendingTransfer]] = {}
        #: Retired transfers poolable for an identical repeat round trip,
        #: in least-recently-used order (oldest first).
        self._retired: "OrderedDict[tuple, PendingTransfer]" = OrderedDict()
        self.completed_transfers = 0
        self.failed_transfers = 0
        #: Diagnostics: round trips served from the reuse pool (not part of
        #: the equivalence contract -- the reference path never reuses).
        self.transfer_reuses = 0

    # -- ownership ---------------------------------------------------------

    def owner_of(self, name: str) -> Optional[Selection]:
        return self._selections.get(name)

    def set_owner(self, selection: Selection) -> Optional[Selection]:
        """Record new ownership; returns the previous owner (for
        SelectionClear delivery), if any."""
        previous = self._selections.get(selection.name)
        self._selections[selection.name] = selection
        return previous

    def clear_owner(self, name: str) -> None:
        self._selections.pop(name, None)

    # -- transfers -----------------------------------------------------------

    def start_transfer(self, transfer: PendingTransfer) -> PendingTransfer:
        self._transfers.append(transfer)
        return transfer

    def begin_transfer(
        self,
        selection_name: str,
        owner_client_id: int,
        requestor_client_id: int,
        requestor_window_id: int,
        property_name: str,
        target: str,
        now: Timestamp,
        reuse: bool = False,
    ) -> PendingTransfer:
        """Open a transfer record for one ConvertSelection round trip.

        With ``reuse=True`` (the display fast path) a retired transfer for
        the identical tuple is recycled: same fields, reset lifecycle, and
        a *fresh* transfer id drawn from the same counter the reference
        path uses -- so the two paths stay indistinguishable.
        """
        if reuse:
            key = (
                selection_name,
                owner_client_id,
                requestor_client_id,
                requestor_window_id,
                property_name,
                target,
            )
            pooled = self._retired.pop(key, None)
            if pooled is not None:
                pooled.state = TransferState.REQUESTED
                pooled.started_at = now
                pooled.transfer_id = next(_transfer_ids)
                self._transfers.append(pooled)
                self.transfer_reuses += 1
                return pooled
        transfer = PendingTransfer(
            selection_name=selection_name,
            owner_client_id=owner_client_id,
            requestor_client_id=requestor_client_id,
            requestor_window_id=requestor_window_id,
            property_name=property_name,
            target=target,
            started_at=now,
        )
        self._transfers.append(transfer)
        return transfer

    def active_transfers(self) -> List[PendingTransfer]:
        """Transfers not yet completed or failed."""
        return [
            t
            for t in self._transfers
            if t.state not in (TransferState.COMPLETED, TransferState.FAILED)
        ]

    def find_transfer(
        self,
        owner_client_id: Optional[int] = None,
        requestor_window_id: Optional[int] = None,
        property_name: Optional[str] = None,
    ) -> Optional[PendingTransfer]:
        """Locate the newest matching active transfer."""
        for transfer in reversed(self._transfers):
            if owner_client_id is not None and transfer.owner_client_id != owner_client_id:
                continue
            if (
                requestor_window_id is not None
                and transfer.requestor_window_id != requestor_window_id
            ):
                continue
            if property_name is not None and transfer.property_name != property_name:
                continue
            return transfer
        return None

    def guarded_transfer_for(
        self, window_id: int, property_name: str
    ) -> Optional[PendingTransfer]:
        """The in-flight transfer protecting (window, property), if any."""
        bucket = self._in_flight.get((window_id, property_name))
        if not bucket:
            return None
        if len(bucket) == 1:
            return bucket[0]
        # Multiple concurrent in-flight transfers on one (window, property)
        # pair: fall back to the reference active-order scan so the oldest
        # match wins exactly as it always did.
        for transfer in self._transfers:
            if (
                transfer.in_flight
                and transfer.requestor_window_id == window_id
                and transfer.property_name == property_name
            ):
                return transfer
        return None

    # -- state transitions ------------------------------------------------------

    def mark_data_stored(self, transfer: PendingTransfer) -> None:
        """Step (8): the owner wrote the property; protection begins."""
        state = transfer.state
        if not (state is _DATA_STORED or state is _NOTIFIED):
            self._in_flight.setdefault(
                (transfer.requestor_window_id, transfer.property_name), []
            ).append(transfer)
        transfer.state = _DATA_STORED

    def mark_notified(self, transfer: PendingTransfer) -> None:
        """Step (9): SelectionNotify delivered; still in flight."""
        transfer.state = TransferState.NOTIFIED

    def complete(self, transfer: PendingTransfer) -> None:
        # One call per successful paste: the helper bodies (_unguard,
        # _prune, _retire) are inlined here to keep the hot path flat.
        state = transfer.state
        if state is _DATA_STORED or state is _NOTIFIED:
            key = (transfer.requestor_window_id, transfer.property_name)
            bucket = self._in_flight.get(key)
            if bucket is not None:
                try:
                    bucket.remove(transfer)
                except ValueError:
                    pass
                if not bucket:
                    del self._in_flight[key]
        transfer.state = TransferState.COMPLETED
        self.completed_transfers += 1
        try:
            self._transfers.remove(transfer)
        except ValueError:
            pass
        retired = self._retired
        key = transfer._reuse_key()
        # Re-inserting an existing key must move it to the MRU end, so
        # pop-then-set; overflow evicts the least-recently-used entry.
        retired.pop(key, None)
        retired[key] = transfer
        if len(retired) > _REUSE_POOL_LIMIT:
            retired.popitem(last=False)

    def fail(self, transfer: PendingTransfer) -> None:
        self._unguard(transfer)
        transfer.state = TransferState.FAILED
        self.failed_transfers += 1
        self._prune(transfer)

    def _unguard(self, transfer: PendingTransfer) -> None:
        """Drop the transfer from the in-flight index, if present."""
        if not transfer.in_flight:
            return
        key = (transfer.requestor_window_id, transfer.property_name)
        bucket = self._in_flight.get(key)
        if bucket is not None:
            try:
                bucket.remove(transfer)
            except ValueError:
                pass
            if not bucket:
                del self._in_flight[key]

    def _prune(self, transfer: PendingTransfer) -> None:
        """Drop a finished transfer so the active scan stays O(in-flight).

        Benchmark workloads run hundreds of thousands of pastes; keeping
        finished transfers would make every protocol step a linear scan
        over history.
        """
        try:
            self._transfers.remove(transfer)
        except ValueError:
            pass

    def _retire(self, transfer: PendingTransfer) -> None:
        """Park a completed transfer for potential repeat-round reuse."""
        retired = self._retired
        key = transfer._reuse_key()
        retired.pop(key, None)
        retired[key] = transfer
        if len(retired) > _REUSE_POOL_LIMIT:
            retired.popitem(last=False)
