"""Shardable study definitions for the fleet engine.

A *study* is anything that can be cut into independent, deterministic
shards: it knows how to (1) partition a population of a given size into
:class:`ShardSpec` work items with hierarchically derived seeds, (2) run
one shard to a picklable result envelope, and (3) aggregate the ordered
envelopes into one population-level report.

The two built-ins mirror the paper's evaluation:

- ``longterm``  -- the Section V-D study; one shard per simulated machine
  pair (protected + unprotected), each living its *own* seeded weeks
  (``--machines 1000`` instead of the paper's two physical computers);
- ``usability`` -- the Section V-B study; shards are batches of simulated
  participants (``--users 10000`` instead of the paper's 46 students).

Determinism contract: shard seeds come from
:meth:`repro.sim.rng.RandomSource.spawn` keyed only by (study, root seed,
unit index), never by worker id or shard boundaries, so aggregate output
is byte-identical for any ``--workers``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.fleet.errors import FleetError, UnknownStudyError
from repro.sim.rng import RandomSource

#: Usability participants grouped per shard -- fixed (never derived from
#: the worker count) so shard layout is a pure function of the population.
USABILITY_SHARD_SIZE = 8

#: Red-team trials grouped per shard -- same fixed-layout rule.
REDTEAM_SHARD_SIZE = 4

#: Synthetic-study users grouped per shard -- same fixed-layout rule.
SYNTHETIC_SHARD_SIZE = 64


@dataclass(frozen=True)
class ShardSpec:
    """One unit of fleet work.  Frozen, picklable, JSON-safe."""

    study: str
    index: int
    seed: int
    params: Tuple[Tuple[str, Any], ...] = ()

    def param(self, key: str, default: Any = None) -> Any:
        for name, value in self.params:
            if name == key:
                return value
        return default

    def to_dict(self) -> Dict[str, Any]:
        return {
            "study": self.study,
            "index": self.index,
            "seed": self.seed,
            "params": {name: value for name, value in sorted(self.params)},
        }


@dataclass(frozen=True)
class StudyDefinition:
    """How the engine partitions, runs, and aggregates one study."""

    name: str
    description: str
    #: (population, root_seed, params) -> ordered shard list.
    build_shards: Callable[[int, int, Dict[str, Any]], List[ShardSpec]]
    #: spec -> picklable result envelope (runs inside a worker process).
    run_shard: Callable[[ShardSpec], Dict[str, Any]]
    #: (ordered envelopes, meta) -> population aggregate (JSON-safe).
    aggregate: Callable[[List[Dict[str, Any]], Dict[str, Any]], Dict[str, Any]]
    #: Optional zero-arg factory for a
    #: :class:`repro.fleet.reducers.StreamingReducer`.  When present the
    #: engine folds shard records one at a time (constant parent memory,
    #: shared-memory merge path) instead of materialising every envelope;
    #: the finalised aggregate must serialise byte-identically to
    #: :attr:`aggregate`'s output.  ``None`` keeps the legacy path.
    streaming: Optional[Callable[[], Any]] = field(default=None)


_REGISTRY: Dict[str, StudyDefinition] = {}


def register_study(definition: StudyDefinition, replace: bool = False) -> None:
    """Add a study to the registry (tests register synthetic ones)."""
    if definition.name in _REGISTRY and not replace:
        raise FleetError(f"study {definition.name!r} is already registered")
    _REGISTRY[definition.name] = definition


def unregister_study(name: str) -> None:
    _REGISTRY.pop(name, None)


def get_study(name: str) -> StudyDefinition:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownStudyError(
            f"unknown study {name!r}; available: {', '.join(study_names())}"
        ) from None


def study_names() -> List[str]:
    return sorted(_REGISTRY)


# -- longterm (Section V-D at population scale) ----------------------------


def _longterm_build(population: int, seed: int, params: Dict[str, Any]) -> List[ShardSpec]:
    days = int(params.get("days", 21))
    root = RandomSource(seed, name="fleet")
    return [
        ShardSpec(
            study="longterm",
            index=machine,
            seed=root.spawn(("longterm", machine)).seed,
            params=(("days", days),),
        )
        for machine in range(population)
    ]


def _longterm_run(spec: ShardSpec) -> Dict[str, Any]:
    from repro.workloads.longterm import run_longterm_shard

    return run_longterm_shard(
        machine_index=spec.index, seed=spec.seed, days=spec.param("days", 21)
    )


def _longterm_aggregate(
    envelopes: List[Dict[str, Any]], meta: Dict[str, Any]
) -> Dict[str, Any]:
    from repro.analysis.population import aggregate_longterm

    return aggregate_longterm(envelopes, meta)


# -- usability (Section V-B at population scale) ---------------------------


def _usability_build(population: int, seed: int, params: Dict[str, Any]) -> List[ShardSpec]:
    size = int(params.get("shard_size", USABILITY_SHARD_SIZE))
    if size < 1:
        raise FleetError(f"usability shard size must be >= 1, got {size}")
    specs = []
    for index, first in enumerate(range(0, population, size)):
        count = min(size, population - first)
        specs.append(
            ShardSpec(
                study="usability",
                index=index,
                seed=seed,
                params=(("count", count), ("first", first)),
            )
        )
    return specs


def _usability_run(spec: ShardSpec) -> Dict[str, Any]:
    from repro.workloads.usability import run_usability_shard

    first = spec.param("first")
    return run_usability_shard(spec.seed, range(first, first + spec.param("count")))


def _usability_aggregate(
    envelopes: List[Dict[str, Any]], meta: Dict[str, Any]
) -> Dict[str, Any]:
    from repro.analysis.population import aggregate_usability

    return aggregate_usability(envelopes, meta)


# -- redteam (the adversarial campaign corpus, sharded) --------------------


def _redteam_build(population: int, seed: int, params: Dict[str, Any]) -> List[ShardSpec]:
    """One shard per (scenario, trial block); *population* = trials per
    scenario.  Scenario order and block layout are pure functions of the
    corpus and the population -- never of the worker count."""
    from repro.redteam.corpus import scenarios_for_families

    size = int(params.get("block", REDTEAM_SHARD_SIZE))
    if size < 1:
        raise FleetError(f"redteam block size must be >= 1, got {size}")
    families_param = params.get("families")
    families = families_param.split(",") if families_param else None
    baseline = int(params.get("baseline", 1))
    specs = []
    for scenario in scenarios_for_families(families):
        for first in range(0, population, size):
            count = min(size, population - first)
            specs.append(
                ShardSpec(
                    study="redteam",
                    index=len(specs),
                    seed=seed,
                    params=(
                        ("baseline", baseline),
                        ("count", count),
                        ("first", first),
                        ("scenario", scenario.name),
                    ),
                )
            )
    return specs


def _redteam_run(spec: ShardSpec) -> Dict[str, Any]:
    from repro.redteam.engine import run_redteam_shard

    return run_redteam_shard(
        scenario_name=spec.param("scenario"),
        seed=spec.seed,
        first_trial=spec.param("first"),
        count=spec.param("count"),
        include_baseline=bool(spec.param("baseline", 1)),
    )


def _redteam_aggregate(
    envelopes: List[Dict[str, Any]], meta: Dict[str, Any]
) -> Dict[str, Any]:
    from repro.redteam.engine import aggregate_redteam

    return aggregate_redteam(envelopes, meta)


# -- synthetic (scale/straggler harness) -----------------------------------


def _synthetic_build(population: int, seed: int, params: Dict[str, Any]) -> List[ShardSpec]:
    """One shard per *shard_size* users; *population* = total users.

    Workload params ride on every spec:

    - ``work``: per-user RNG draws (CPU weight of a shard);
    - ``straggler_every``/``straggler_ms``: every Nth shard sleeps that
      many milliseconds -- a deterministic straggler injector for the
      steal benchmarks and the forced-steal determinism tests;
    - ``straggler_first``: the first N shards each sleep ``straggler_ms``
      instead, *clustering* the stragglers into one worker's opening
      lease (modulo spacing is load-balanced by construction, which is
      exactly the workload where stealing cannot help).
    """
    size = int(params.get("shard_size", SYNTHETIC_SHARD_SIZE))
    if size < 1:
        raise FleetError(f"synthetic shard size must be >= 1, got {size}")
    work = int(params.get("work", 16))
    straggler_every = int(params.get("straggler_every", 0))
    straggler_first = int(params.get("straggler_first", 0))
    straggler_ms = float(params.get("straggler_ms", 0.0))
    specs = []
    for index, first in enumerate(range(0, population, size)):
        count = min(size, population - first)
        specs.append(
            ShardSpec(
                study="synthetic",
                index=index,
                seed=seed,
                params=(
                    ("count", count),
                    ("first", first),
                    ("straggler_every", straggler_every),
                    ("straggler_first", straggler_first),
                    ("straggler_ms", straggler_ms),
                    ("work", work),
                ),
            )
        )
    return specs


def _synthetic_run(spec: ShardSpec) -> Dict[str, Any]:
    """Deterministic per-user work; results derive from (seed, user id)
    only, so aggregates are invariant to shard size, workers, and steals."""
    import time

    root = RandomSource(spec.seed, name="synthetic")
    first = spec.param("first")
    count = spec.param("count")
    work = spec.param("work", 16)
    checksum = 0
    events = 0
    counters = {"synthetic.users": count, "synthetic.draws": count * work}
    for user in range(first, first + count):
        rng = root.spawn(("synthetic-user", user))
        for _ in range(work):
            checksum = (checksum + rng.randint(0, 1 << 20)) % (1 << 61)
        if rng.chance(0.25):
            events += 1
    straggler_every = spec.param("straggler_every", 0)
    straggler_first = spec.param("straggler_first", 0)
    if (straggler_every and spec.index % straggler_every == 0) or (
        spec.index < straggler_first
    ):
        time.sleep(spec.param("straggler_ms", 0.0) / 1000.0)
    return {
        "first": first,
        "users": count,
        "checksum": checksum,
        "events": events,
        "counters": counters,
    }


class SyntheticState:
    """Streaming accumulator for the synthetic study."""

    __slots__ = ("shards", "users", "checksum", "events", "counters")

    def __init__(self) -> None:
        from repro.obs.counters import Counters

        self.shards = 0
        self.users = 0
        self.checksum = 0
        self.events = 0
        self.counters = Counters()

    def fold(self, envelope: Dict[str, Any]) -> None:
        from repro.analysis.population import merge_counters

        self.shards += 1
        self.users += envelope["users"]
        self.checksum = (self.checksum + envelope["checksum"]) % (1 << 61)
        self.events += envelope["events"]
        merge_counters(self.counters, envelope["counters"])

    def merge(self, other: "SyntheticState") -> "SyntheticState":
        self.shards += other.shards
        self.users += other.users
        self.checksum = (self.checksum + other.checksum) % (1 << 61)
        self.events += other.events
        self.counters.merge(other.counters)
        return self

    def finalize(self, meta: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        from repro.analysis.population import proportion_summary

        aggregate: Dict[str, Any] = {
            "study": "synthetic",
            "shards": self.shards,
            "users": self.users,
            "checksum": self.checksum,
            "event_rate": proportion_summary(self.events, self.users),
            "counters": self.counters.snapshot(),
        }
        if meta:
            aggregate["meta"] = dict(meta)
        return aggregate


def synthetic_reducer():
    from repro.fleet.reducers import StreamingReducer

    return StreamingReducer(
        init=SyntheticState,
        fold=lambda state, envelope, index: state.fold(envelope),
        merge=lambda left, right: left.merge(right),
        finalize=lambda state, meta: state.finalize(dict(meta) if meta else None),
    )


def _synthetic_aggregate(
    envelopes: List[Dict[str, Any]], meta: Dict[str, Any]
) -> Dict[str, Any]:
    # One source of truth: the batch aggregate *is* the reducer run over a
    # materialised list, so the two paths cannot drift.
    return synthetic_reducer().reduce_envelopes(envelopes, meta)


def _longterm_reducer():
    from repro.analysis.population import longterm_reducer

    return longterm_reducer()


def _usability_reducer():
    from repro.analysis.population import usability_reducer

    return usability_reducer()


def _redteam_reducer():
    from repro.redteam.engine import redteam_reducer

    return redteam_reducer()


register_study(
    StudyDefinition(
        name="longterm",
        description="Section V-D long-term study, one machine pair per shard",
        build_shards=_longterm_build,
        run_shard=_longterm_run,
        aggregate=_longterm_aggregate,
        streaming=_longterm_reducer,
    )
)
register_study(
    StudyDefinition(
        name="usability",
        description="Section V-B usability study, a batch of participants per shard",
        build_shards=_usability_build,
        run_shard=_usability_run,
        aggregate=_usability_aggregate,
        streaming=_usability_reducer,
    )
)
register_study(
    StudyDefinition(
        name="redteam",
        description="adversarial campaign corpus, a block of scenario trials per shard",
        build_shards=_redteam_build,
        run_shard=_redteam_run,
        aggregate=_redteam_aggregate,
        streaming=_redteam_reducer,
    )
)
register_study(
    StudyDefinition(
        name="synthetic",
        description="deterministic scale/straggler harness, a batch of users per shard",
        build_shards=_synthetic_build,
        run_shard=_synthetic_run,
        aggregate=_synthetic_aggregate,
        streaming=synthetic_reducer,
    )
)
