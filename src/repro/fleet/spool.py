"""The checkpoint spool: one record file per completed shard, plus a manifest.

Layout of a spool directory::

    manifest.json      -- study name, seed, population, params, shard count
    shard-00000.rec    -- versioned header + packed spec + packed result
    shard-00001.rec
    ...

Checkpoint files are **not pickles** (they were, in spool format 1):
each is a fixed header followed by two records in the deterministic
struct-packed codec of :mod:`repro.fleet.records`::

    [0:4)   magic  b"OVSP"
    [4:6)   <H  spool format version
    [6:10)  <I  byte length of the packed spec record
    [10:..) packed spec record, then packed result record

Splitting spec and result means the completion scan
(:meth:`completed_indexes`) parses only the tiny spec, and the streaming
merge path (:meth:`read_shard_packed`) hands the result bytes straight to
the reducer without materialising the envelope.

Writes are atomic (``.tmp`` + :func:`os.replace`), so a run killed
mid-shard leaves either a complete checkpoint or none -- never a torn one.
A resumed run re-executes exactly the shards whose files are missing or
corrupt; everything else is served from disk.  A checkpoint written by a
*different format version* is not treated as corruption: it raises
:class:`~repro.fleet.errors.SpoolVersionError` naming both versions, where
the pickle era died inside ``pickle.load`` with an opaque traceback.
"""

from __future__ import annotations

import json
import os
import re
import struct
from pathlib import Path
from typing import Any, Dict, Optional, Set

from repro.fleet.errors import SpoolMismatchError, SpoolVersionError
from repro.fleet.records import pack_record, unpack_record

#: Bumped when the checkpoint layout changes; old spools refuse to resume
#: with a :class:`SpoolVersionError`.  Version 1 was one pickle per shard.
SPOOL_VERSION = 2

_MAGIC = b"OVSP"
_HEADER = struct.Struct("<4sHI")

#: First byte of every pickle protocol >= 2 stream -- how we recognise a
#: format-1 checkpoint and name it, instead of calling it corruption.
_PICKLE_PROTO = 0x80

_SHARD_FILE = re.compile(r"^shard-(\d{5})\.rec$")


class Spool:
    """A directory of per-shard result checkpoints."""

    MANIFEST_NAME = "manifest.json"

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)

    # -- manifest ----------------------------------------------------------

    def manifest_path(self) -> Path:
        return self.root / self.MANIFEST_NAME

    def ensure_manifest(self, manifest: Dict[str, Any]) -> None:
        """Create the manifest, or verify an existing one matches exactly.

        *manifest* must be JSON-safe; the comparison is on the parsed
        values, so key order does not matter.  A manifest from a different
        spool *format* raises :class:`SpoolVersionError` (the actionable
        subset of mismatch: delete the spool or rerun with the old build);
        any other difference raises :class:`SpoolMismatchError`.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        manifest = dict(manifest, version=SPOOL_VERSION)
        existing = self.read_manifest()
        if existing is not None:
            if existing.get("version") != SPOOL_VERSION:
                raise SpoolVersionError(
                    f"spool {self.root} uses checkpoint format "
                    f"{existing.get('version')!r}, but this build speaks "
                    f"format {SPOOL_VERSION}; delete the spool directory to "
                    f"start fresh (or resume it with the build that wrote it)"
                )
            if existing != manifest:
                raise SpoolMismatchError(
                    f"spool {self.root} was written by a different run: "
                    f"existing manifest {existing!r} != requested {manifest!r}"
                )
            return
        self._atomic_write_bytes(
            self.manifest_path(),
            (json.dumps(manifest, sort_keys=True, indent=2) + "\n").encode(),
        )

    def read_manifest(self) -> Optional[Dict[str, Any]]:
        path = self.manifest_path()
        if not path.exists():
            return None
        return json.loads(path.read_text())

    # -- shard checkpoints -------------------------------------------------

    def shard_path(self, index: int) -> Path:
        return self.root / f"shard-{index:05d}.rec"

    def write_shard(
        self,
        spec_dict: Dict[str, Any],
        result: Optional[Dict[str, Any]] = None,
        *,
        packed_result: Optional[bytes] = None,
    ) -> bytes:
        """Atomically checkpoint one completed shard.

        Pass ``packed_result`` when the caller already packed the envelope
        (the worker hot path packs once and reuses the bytes for both the
        spool and the shared-memory ring); returns the packed result bytes
        either way.
        """
        if packed_result is None:
            packed_result = pack_record(result)
        packed_spec = pack_record(spec_dict)
        payload = b"".join(
            (
                _HEADER.pack(_MAGIC, SPOOL_VERSION, len(packed_spec)),
                packed_spec,
                packed_result,
            )
        )
        self._atomic_write_bytes(self.shard_path(spec_dict["index"]), payload)
        return packed_result

    def _split_checkpoint(self, path: Path) -> tuple:
        """(packed spec bytes, packed result bytes) of a checkpoint file.

        Raises :class:`SpoolVersionError` for recognisable foreign formats
        and plain exceptions for corruption.
        """
        data = path.read_bytes()
        if len(data) >= 1 and data[0] == _PICKLE_PROTO:
            raise SpoolVersionError(
                f"checkpoint {path} is a format-1 pickle spool file, but "
                f"this build speaks format {SPOOL_VERSION}; delete the "
                f"spool directory to start fresh (or resume it with the "
                f"build that wrote it)"
            )
        magic, version, spec_len = _HEADER.unpack_from(data, 0)
        if magic != _MAGIC:
            raise ValueError(f"checkpoint {path} has no spool magic")
        if version != SPOOL_VERSION:
            raise SpoolVersionError(
                f"checkpoint {path} uses spool format {version}, but this "
                f"build speaks format {SPOOL_VERSION}; delete the spool "
                f"directory to start fresh (or resume it with the build "
                f"that wrote it)"
            )
        body = memoryview(data)[_HEADER.size:]
        if len(body) < spec_len:
            raise ValueError(f"checkpoint {path} is truncated")
        return body[:spec_len], body[spec_len:]

    def read_shard(self, index: int) -> Dict[str, Any]:
        """Load a completed shard's result envelope (fully materialised)."""
        _, packed = self._split_checkpoint(self.shard_path(index))
        return unpack_record(packed, materialize=True)

    def read_shard_packed(self, index: int) -> bytes:
        """A completed shard's packed result bytes -- the streaming merge
        path feeds these to the reducer without building the dict tree."""
        _, packed = self._split_checkpoint(self.shard_path(index))
        return bytes(packed)

    def discard_shard(self, index: int) -> None:
        """Drop a shard's checkpoint, if any.

        The engine calls this when it quarantines a shard: a worker killed
        mid-shard (e.g. on deadline) may have already written its
        checkpoint, and a surviving file would make a later resume adopt
        as *completed* a shard this run declared failed.
        """
        self.shard_path(index).unlink(missing_ok=True)

    def completed_indexes(self) -> Set[int]:
        """Indexes of shards with a *readable* checkpoint on disk.

        Corrupt files (e.g. truncated by a hard kill before the rename, or
        a stray partial copy) are deleted so the engine recomputes them.
        Files in a recognisable *foreign format* are not corruption --
        they raise :class:`SpoolVersionError` so a format upgrade is loud,
        never a silent full re-execution of a million-shard spool.
        """
        completed: Set[int] = set()
        if not self.root.is_dir():
            return completed
        for entry in sorted(self.root.iterdir()):
            match = _SHARD_FILE.match(entry.name)
            if not match:
                continue
            index = int(match.group(1))
            try:
                packed_spec, packed_result = self._split_checkpoint(entry)
                spec = unpack_record(packed_spec, materialize=True)
                if spec["index"] != index:
                    raise ValueError("index mismatch")
                unpack_record(packed_result, materialize=False)
            except SpoolVersionError:
                raise
            except Exception:
                entry.unlink(missing_ok=True)
                continue
            completed.add(index)
        return completed

    # -- internals ---------------------------------------------------------

    def _atomic_write_bytes(self, path: Path, data: bytes) -> None:
        tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
        tmp.write_bytes(data)
        os.replace(tmp, path)
