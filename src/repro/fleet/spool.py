"""The checkpoint spool: one pickle per completed shard, plus a manifest.

Layout of a spool directory::

    manifest.json      -- study name, seed, population, params, shard count
    shard-00000.pkl    -- {"spec": <ShardSpec as dict>, "result": <envelope>}
    shard-00001.pkl
    ...

Writes are atomic (``.tmp`` + :func:`os.replace`), so a run killed
mid-shard leaves either a complete checkpoint or none -- never a torn one.
A resumed run re-executes exactly the shards whose files are missing or
unreadable; everything else is served from disk.
"""

from __future__ import annotations

import json
import os
import pickle
import re
from pathlib import Path
from typing import Any, Dict, Optional, Set

from repro.fleet.errors import SpoolMismatchError

#: Bumped when the checkpoint layout changes; old spools refuse to resume.
SPOOL_VERSION = 1

_SHARD_FILE = re.compile(r"^shard-(\d{5})\.pkl$")


class Spool:
    """A directory of per-shard result checkpoints."""

    MANIFEST_NAME = "manifest.json"

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)

    # -- manifest ----------------------------------------------------------

    def manifest_path(self) -> Path:
        return self.root / self.MANIFEST_NAME

    def ensure_manifest(self, manifest: Dict[str, Any]) -> None:
        """Create the manifest, or verify an existing one matches exactly.

        *manifest* must be JSON-safe; the comparison is on the parsed
        values, so key order does not matter.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        manifest = dict(manifest, version=SPOOL_VERSION)
        existing = self.read_manifest()
        if existing is not None:
            if existing != manifest:
                raise SpoolMismatchError(
                    f"spool {self.root} was written by a different run: "
                    f"existing manifest {existing!r} != requested {manifest!r}"
                )
            return
        self._atomic_write_bytes(
            self.manifest_path(),
            (json.dumps(manifest, sort_keys=True, indent=2) + "\n").encode(),
        )

    def read_manifest(self) -> Optional[Dict[str, Any]]:
        path = self.manifest_path()
        if not path.exists():
            return None
        return json.loads(path.read_text())

    # -- shard checkpoints -------------------------------------------------

    def shard_path(self, index: int) -> Path:
        return self.root / f"shard-{index:05d}.pkl"

    def write_shard(self, spec_dict: Dict[str, Any], result: Dict[str, Any]) -> None:
        """Atomically checkpoint one completed shard."""
        payload = pickle.dumps({"spec": spec_dict, "result": result}, protocol=4)
        self._atomic_write_bytes(self.shard_path(spec_dict["index"]), payload)

    def read_shard(self, index: int) -> Dict[str, Any]:
        """Load a completed shard's result envelope."""
        with open(self.shard_path(index), "rb") as handle:
            return pickle.load(handle)["result"]

    def discard_shard(self, index: int) -> None:
        """Drop a shard's checkpoint, if any.

        The engine calls this when it quarantines a shard: a worker killed
        mid-shard (e.g. on deadline) may have already written its
        checkpoint, and a surviving file would make a later resume adopt
        as *completed* a shard this run declared failed.
        """
        self.shard_path(index).unlink(missing_ok=True)

    def completed_indexes(self) -> Set[int]:
        """Indexes of shards with a *readable* checkpoint on disk.

        Unreadable files (e.g. truncated by a hard kill before the rename,
        or a stray partial copy) are deleted so the engine recomputes them.
        """
        completed: Set[int] = set()
        if not self.root.is_dir():
            return completed
        for entry in sorted(self.root.iterdir()):
            match = _SHARD_FILE.match(entry.name)
            if not match:
                continue
            index = int(match.group(1))
            try:
                with open(entry, "rb") as handle:
                    payload = pickle.load(handle)
                if payload["spec"]["index"] != index:
                    raise ValueError("index mismatch")
            except Exception:
                entry.unlink(missing_ok=True)
                continue
            completed.add(index)
        return completed

    # -- internals ---------------------------------------------------------

    def _atomic_write_bytes(self, path: Path, data: bytes) -> None:
        tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
        tmp.write_bytes(data)
        os.replace(tmp, path)
