"""Single-producer/single-consumer rings over ``multiprocessing.shared_memory``.

The fleet data plane: each worker process owns one ring and pushes its
packed result records into it; the driver drains all rings on every poll
pass.  Records never touch a ``multiprocessing.Queue`` (no pickle, no
pipe write per record) -- the only per-record cost on the merge path is
two circular memcpys and a couple of struct packs.

Layout of the shared block::

    [0:8)   head  -- consumer byte cursor, monotonically increasing
    [8:16)  tail  -- producer byte cursor, monotonically increasing
    [16:..) data  -- circular byte area of ``capacity`` bytes

Frames are ``<IBI`` (shard index, flags, payload length) + payload bytes,
written circularly (a frame may wrap).  ``head``/``tail`` are cursors
modulo nothing -- ``tail - head`` is exactly the number of unread bytes,
so full/empty are unambiguous without wasting a slot.

Cursor updates are guarded by a shared lock (CPython offers no atomic
shared-memory stores); the critical sections are a cursor read/write plus
the memcpy, a few microseconds for the record sizes the fleet moves.
Records too large for the ring are *spilled*: the producer pushes a
header-only frame flagged ``FLAG_SPILLED`` and the consumer re-reads the
record from the shard's spool checkpoint instead.
"""

from __future__ import annotations

import struct
from multiprocessing import shared_memory
from typing import Optional, Tuple

from repro.fleet.errors import FleetError

_CURSORS = struct.Struct("<QQ")
_FRAME_HEAD = struct.Struct("<IBI")

#: Frame flags.
FLAG_SPILLED = 0x01

#: Default ring capacity per worker; a longterm machine-pair record packs
#: to a few KiB, so this buffers hundreds of shards of headroom.
DEFAULT_RING_BYTES = 1 << 20


class ShmRing:
    """One SPSC record ring in a shared-memory block.

    The driver constructs the ring (``create=True``) before forking the
    worker, the forked worker inherits the mapped block, and only the
    driver ever calls :meth:`unlink`.  *lock* is a
    ``multiprocessing.Lock`` shared by exactly this producer/consumer
    pair.
    """

    def __init__(self, capacity: int, lock, name: Optional[str] = None,
                 create: bool = True) -> None:
        if capacity < 4096:
            raise FleetError(f"ring capacity must be >= 4096 bytes, got {capacity}")
        self.capacity = capacity
        self.lock = lock
        self._shm = shared_memory.SharedMemory(
            name=name, create=create, size=_CURSORS.size + capacity
        )
        self._buf = self._shm.buf
        if create:
            _CURSORS.pack_into(self._buf, 0, 0, 0)

    @property
    def name(self) -> str:
        return self._shm.name

    # -- cursor helpers (caller holds the lock) ----------------------------

    def _cursors(self) -> Tuple[int, int]:
        return _CURSORS.unpack_from(self._buf, 0)

    def _write_bytes(self, cursor: int, payload) -> None:
        """Circular write of *payload* starting at byte cursor *cursor*."""
        base = _CURSORS.size
        start = cursor % self.capacity
        first = min(len(payload), self.capacity - start)
        self._buf[base + start:base + start + first] = payload[:first]
        if first < len(payload):
            rest = len(payload) - first
            self._buf[base:base + rest] = payload[first:]

    def _read_bytes(self, cursor: int, length: int) -> bytes:
        base = _CURSORS.size
        start = cursor % self.capacity
        first = min(length, self.capacity - start)
        chunk = bytes(self._buf[base + start:base + start + first])
        if first < length:
            chunk += bytes(self._buf[base:base + length - first])
        return chunk

    # -- producer ----------------------------------------------------------

    def try_push(self, shard_index: int, payload: bytes, flags: int = 0) -> bool:
        """Push one frame; False when the ring lacks space right now."""
        frame_len = _FRAME_HEAD.size + len(payload)
        if frame_len > self.capacity:
            return False
        with self.lock:
            head, tail = self._cursors()
            if self.capacity - (tail - head) < frame_len:
                return False
            self._write_bytes(
                tail, _FRAME_HEAD.pack(shard_index, flags, len(payload))
            )
            if payload:
                self._write_bytes(tail + _FRAME_HEAD.size, payload)
            _CURSORS.pack_into(self._buf, 0, head, tail + frame_len)
        return True

    def fits(self, payload_len: int) -> bool:
        """Could a payload of this size *ever* fit (regardless of fill)?"""
        return _FRAME_HEAD.size + payload_len <= self.capacity

    # -- consumer ----------------------------------------------------------

    def try_pop(
        self, timeout: Optional[float] = None
    ) -> Optional[Tuple[int, int, bytes]]:
        """Pop one frame as (shard_index, flags, payload), or None.

        *timeout* bounds the lock acquisition: draining the ring of a
        worker that was killed (possibly mid-push, holding the lock) must
        give up instead of deadlocking -- unread frames are recoverable
        from the spool anyway.
        """
        if timeout is None:
            acquired = self.lock.acquire()
        else:
            acquired = self.lock.acquire(timeout=timeout)
        if not acquired:
            return None
        try:
            head, tail = self._cursors()
            if tail == head:
                return None
            index, flags, length = _FRAME_HEAD.unpack(
                self._read_bytes(head, _FRAME_HEAD.size)
            )
            payload = (
                self._read_bytes(head + _FRAME_HEAD.size, length) if length else b""
            )
            _CURSORS.pack_into(
                self._buf, 0, head + _FRAME_HEAD.size + length, tail
            )
        finally:
            self.lock.release()
        return index, flags, payload

    def drain(self, timeout: Optional[float] = None):
        """Yield every frame currently buffered."""
        while True:
            frame = self.try_pop(timeout=timeout)
            if frame is None:
                return
            yield frame

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Unmap this process's view (both sides)."""
        self._buf = None
        try:
            self._shm.close()
        except (BufferError, OSError):  # pragma: no cover - exported views
            pass

    def unlink(self) -> None:
        """Destroy the backing block (driver only, after close-of-use)."""
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
