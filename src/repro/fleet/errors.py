"""Errors raised by the fleet population engine."""

from __future__ import annotations


class FleetError(Exception):
    """Base class for fleet engine failures."""


class UnknownStudyError(FleetError):
    """A study name that is not in the registry."""


class SpoolMismatchError(FleetError):
    """A resume directory was produced by a different fleet configuration.

    Resuming a 1000-machine seed-7 run from a spool written by a
    500-machine seed-9 run would silently mix populations; the manifest
    check turns that into a loud error instead.
    """
