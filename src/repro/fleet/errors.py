"""Errors raised by the fleet population engine."""

from __future__ import annotations


class FleetError(Exception):
    """Base class for fleet engine failures."""


class UnknownStudyError(FleetError):
    """A study name that is not in the registry."""


class SpoolMismatchError(FleetError):
    """A resume directory was produced by a different fleet configuration.

    Resuming a 1000-machine seed-7 run from a spool written by a
    500-machine seed-9 run would silently mix populations; the manifest
    check turns that into a loud error instead.
    """


class SpoolVersionError(SpoolMismatchError):
    """A checkpoint (or manifest) was written by a different spool format.

    Old pickle-era spools used to die inside ``pickle.load`` with an
    opaque unpickling traceback; the versioned record header turns that
    into this error, which says exactly which format was found, which one
    this build speaks, and what to do about it.
    """


class RecordFormatError(FleetError):
    """A result record's bytes do not parse under the record codec."""
