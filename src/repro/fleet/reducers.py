"""Streaming reduction for fleet aggregates.

The old aggregation path materialised every shard envelope in the parent
(`[spool.read_shard(i) for i in ...]`) and handed the whole list to the
study's ``aggregate``; at a million users that is gigabytes of parent
heap for numbers that are ultimately a page of sums and Wilson intervals.

A :class:`StreamingReducer` replaces the list with four small functions:

``init()``
    Build an empty accumulator state.
``fold(state, envelope, shard_index)``
    Absorb one shard envelope into the state, in place.  Envelopes arrive
    with counter dicts as :class:`repro.fleet.records.PackedCounters`
    views, so counter merges go straight from the shared-memory ring into
    the accumulator with no intermediate dicts.
``merge(left, right)``
    Combine two accumulator states built from *adjacent* shard-id ranges
    (left range strictly before right); returns the combined state (may
    mutate and return ``left``).
``finalize(state, meta)``
    Produce the aggregate dict -- byte-identical (via ``aggregate_json``)
    to what the legacy materialise-everything aggregate returns.

Determinism contract: ``fold`` is applied in *shard-id order*, never
arrival order.  :class:`OrderedFold` enforces that -- workers finish out
of order (retries, stragglers, steals), so it buffers early arrivals and
advances a cursor through the expected shard ids, folding each record
exactly when its turn comes.  Buffered entries are thunks: a record that
lives in the spool is not read into memory until the cursor reaches it,
keeping the parent's resident record count bounded by the out-of-order
window, not the population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Set

from repro.fleet.errors import FleetError

#: fold(state, envelope, shard_index) -> None
FoldFn = Callable[[Any, Any, int], None]


@dataclass(frozen=True)
class StreamingReducer:
    """A constant-memory replacement for a study's list-based aggregate."""

    init: Callable[[], Any]
    fold: FoldFn
    merge: Callable[[Any, Any], Any]
    finalize: Callable[[Any, Mapping[str, Any]], Dict[str, Any]]

    def reduce_envelopes(
        self, envelopes: Sequence[Any], meta: Mapping[str, Any]
    ) -> Dict[str, Any]:
        """Run the whole pipeline over in-memory envelopes (the legacy
        aggregate signature) -- lets a study define ``aggregate`` and
        ``streaming`` from one source of truth."""
        state = self.init()
        for position, envelope in enumerate(envelopes):
            self.fold(state, envelope, position)
        return self.finalize(state, meta)


class OrderedFold:
    """Folds shard records in shard-id order no matter the arrival order.

    ``expected`` is the full sorted shard-id universe for the run.  Each
    record is *offered* as a thunk (``() -> envelope``); quarantined
    shards are *skipped*.  The cursor advances over the expected ids,
    calling each thunk exactly when its id comes up, so the reducer sees
    the same sequence a single-worker run would produce.

    ``peak_buffered`` records the high-water mark of out-of-order thunks
    held at once -- the fleet report surfaces it as evidence that parent
    memory tracks the straggler window, not the population.
    """

    def __init__(
        self,
        reducer: StreamingReducer,
        expected: Sequence[int],
        reader: Optional[Callable[[int], Any]] = None,
    ) -> None:
        self.reducer = reducer
        self.state = reducer.init()
        self._expected = sorted(expected)
        self._cursor = 0
        self._buffered: Dict[int, Callable[[], Any]] = {}
        self._resident: Set[int] = set()
        self._reader = reader
        self._skipped: Set[int] = set()
        self._consumed: Set[int] = set()
        self.folded = 0
        self.peak_buffered = 0

    def offer(self, shard_index: int, thunk: Callable[[], Any]) -> None:
        """Register the record for *shard_index*; folds immediately if the
        cursor is waiting on it, otherwise buffers the thunk."""
        if shard_index in self._consumed or shard_index in self._skipped:
            return
        self._buffered[shard_index] = thunk
        if len(self._buffered) > self.peak_buffered:
            self.peak_buffered = len(self._buffered)
        self._advance()

    def offer_resident(self, shard_index: int) -> None:
        """Register a record that lives in stable storage (a spool
        checkpoint): the constructor's *reader* loads it only when the
        cursor reaches it, so resumed shards cost an index in a set, never
        a buffered record."""
        if self._reader is None:
            raise FleetError("offer_resident requires a reader")
        if shard_index in self._consumed or shard_index in self._skipped:
            return
        self._resident.add(shard_index)
        self._advance()

    def skip(self, shard_index: int) -> None:
        """Mark *shard_index* permanently absent (quarantined)."""
        if shard_index in self._consumed:
            return
        self._skipped.add(shard_index)
        self._buffered.pop(shard_index, None)
        self._resident.discard(shard_index)
        self._advance()

    def _advance(self) -> None:
        expected = self._expected
        while self._cursor < len(expected):
            index = expected[self._cursor]
            if index in self._skipped:
                self._cursor += 1
                continue
            thunk = self._buffered.pop(index, None)
            if thunk is not None:
                envelope = thunk()
            elif index in self._resident:
                self._resident.discard(index)
                envelope = self._reader(index)
            else:
                return
            self.reducer.fold(self.state, envelope, index)
            self._consumed.add(index)
            self.folded += 1
            self._cursor += 1

    @property
    def complete(self) -> bool:
        return self._cursor >= len(self._expected)

    def pending_index(self) -> Optional[int]:
        """The shard id the cursor is currently stalled on (None if done)."""
        if self.complete:
            return None
        return self._expected[self._cursor]

    def finalize(self, meta: Mapping[str, Any]) -> Dict[str, Any]:
        if not self.complete:
            raise FleetError(
                f"ordered fold incomplete: stalled on shard "
                f"{self.pending_index()} with {len(self._buffered)} records "
                f"buffered"
            )
        return self.reducer.finalize(self.state, meta)
