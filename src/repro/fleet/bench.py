"""Fleet benchmark rigs for the perf-baseline harness.

Two rigs, two halves of the million-user hot path:

- :class:`FleetMergeRig` (``fleet_merge``) -- the record merge plane: a
  packed shard record is pushed through a real shared-memory ring,
  popped, unpacked to counter views, and folded into the streaming
  reducer in shard-id order.  One op == one shard record merged, i.e.
  ``ops_per_sec`` is the parent's shard-absorption ceiling.
- :class:`FleetStealRig` (``fleet_steal``) -- the scheduling plane: the
  *actual* :class:`~repro.fleet.scheduler.StealScheduler` driven under a
  deterministic virtual-time cost model with straggler-heavy shard costs.
  One op == one shard scheduled to completion, so ``ops_per_sec`` is pure
  scheduler bookkeeping cost (no processes, no sleeps -- those belong to
  the end-to-end test in ``benchmarks/test_bench_fleet.py``).  The rig
  also reports the *virtual* makespan speedup of stealing versus static
  leases on that workload in ``bench_extra``.

Both rigs are deterministic: fixed seeds, fixed cost models, no RNG at
measurement time.
"""

from __future__ import annotations

import heapq
import multiprocessing
from typing import Any, Dict, List

from repro.fleet.records import pack_record, unpack_record
from repro.fleet.reducers import OrderedFold
from repro.fleet.scheduler import StealScheduler
from repro.fleet.shm_ring import ShmRing
from repro.fleet.studies import synthetic_reducer

#: Counter names per record -- sized like a real machine snapshot
#: (:func:`repro.obs.counters.collect_counters` emits ~30 names).
_COUNTER_NAMES = 30


def _sample_record() -> Dict[str, Any]:
    """One synthetic-study-shaped shard envelope with a realistic
    counter payload."""
    counters = {
        f"layer{i % 6}.metric_{i:02d}": 1000 + i * 7 for i in range(_COUNTER_NAMES)
    }
    return {
        "first": 0,
        "users": 64,
        "checksum": 123456789,
        "events": 17,
        "counters": counters,
    }


class FleetMergeRig:
    """ring push -> ring pop -> unpack -> ordered fold, per record."""

    def __init__(self, ring_bytes: int = 1 << 16) -> None:
        self.payload = pack_record(_sample_record())
        self.ring = ShmRing(ring_bytes, multiprocessing.Lock())
        self.bench_extra: Dict[str, Any] = {
            "record_bytes": len(self.payload),
            "counters_per_record": _COUNTER_NAMES,
        }

    def run(self, ops: int) -> None:
        payload = self.payload
        ring = self.ring
        fold = OrderedFold(synthetic_reducer(), range(ops))
        for index in range(ops):
            ring.try_push(index, payload)
            popped_index, _flags, popped = ring.try_pop()
            fold.offer(popped_index, lambda p=popped: unpack_record(p))
        aggregate = fold.finalize({})
        assert aggregate["shards"] == ops

    def close(self) -> None:
        self.ring.close()
        self.ring.unlink()


#: Straggler cost model: the first STRAGGLER_FIRST shards each cost
#: STRAGGLER_COST virtual units, the rest cost 1.  Clustered stragglers
#: land in one worker's opening lease; stealing flattens the makespan,
#: while static leases serialise the loaded worker.  (Modulo-spaced
#: stragglers are load-balanced by construction and show no steal win.)
STRAGGLER_FIRST = 8
STRAGGLER_COST = 9.0


def _clustered_cost(index: int) -> float:
    return STRAGGLER_COST if index < STRAGGLER_FIRST else 1.0


def simulate_fleet(
    shards: int,
    workers: int,
    lease_size: int,
    steal: bool,
    cost=_clustered_cost,
) -> Dict[str, Any]:
    """Drive a :class:`StealScheduler` to completion in virtual time.

    Workers are event-loop actors: each runs its lease position by
    position (advancing a virtual clock by the shard's cost), and idle
    workers lease from the queue or steal exactly the way the engine
    does -- same policy methods, same cut rule -- minus the process and
    lock machinery.  Returns the virtual makespan plus the scheduler's
    own counters.
    """
    scheduler = StealScheduler(
        list(range(shards)), list(range(workers)), lease_size, steal=steal
    )
    events: List = []  # (virtual finish time, sequence, worker_id)
    sequence = 0
    now = 0.0
    idle: List[int] = []

    def start_next(worker_id: int, at: float) -> bool:
        """Start the worker's next unstarted position, if any."""
        nonlocal sequence
        lease = scheduler.lease_of[worker_id]
        position = lease.progress + 1
        if position >= lease.revoked_from:
            scheduler.release(worker_id)
            return False
        scheduler.note_progress(worker_id, position)
        sequence += 1
        heapq.heappush(
            events, (at + cost(lease.items[position]), sequence, worker_id)
        )
        return True

    def acquire_work(worker_id: int, at: float) -> bool:
        lease = scheduler.lease(worker_id)
        if lease is None and steal:
            victim_id = scheduler.plan_steal(worker_id)
            if victim_id is not None:
                cut = scheduler.proposed_cut(victim_id)
                if cut is not None:
                    lease = scheduler.record_steal(victim_id, worker_id, cut)
        if lease is None:
            return False
        return start_next(worker_id, at)

    for worker_id in range(workers):
        if not acquire_work(worker_id, now):
            idle.append(worker_id)

    while events:
        now, _seq, worker_id = heapq.heappop(events)
        if not start_next(worker_id, now) and not acquire_work(worker_id, now):
            idle.append(worker_id)
        # Freshly stealable tail (or requeued work) may unblock idlers.
        still_idle: List[int] = []
        for waiting in idle:
            if scheduler.busy(waiting) or not acquire_work(waiting, now):
                if not scheduler.busy(waiting):
                    still_idle.append(waiting)
        idle = still_idle

    return {
        "makespan": now,
        "steals": scheduler.steals,
        "shards_stolen": scheduler.shards_stolen,
        "leases": scheduler.leases_granted,
    }


class FleetStealRig:
    """Scheduler bookkeeping throughput on a straggler-heavy workload."""

    def __init__(self, workers: int = 8, lease_size: int = 8) -> None:
        self.workers = workers
        self.lease_size = lease_size
        self.bench_extra: Dict[str, Any] = {}

    def run(self, ops: int) -> None:
        stolen = simulate_fleet(ops, self.workers, self.lease_size, steal=True)
        static = simulate_fleet(ops, self.workers, self.lease_size, steal=False)
        # The headline speedup comes from the acceptance-shaped scenario:
        # every shard leased up front (no queue slack), stragglers
        # clustered in worker 0's lease -- the same shape the end-to-end
        # sleep benchmark in benchmarks/test_bench_fleet.py runs with
        # real processes.
        scenario_shards = self.workers * self.lease_size
        small_stolen = simulate_fleet(
            scenario_shards, self.workers, self.lease_size, steal=True
        )
        small_static = simulate_fleet(
            scenario_shards, self.workers, self.lease_size, steal=False
        )
        self.bench_extra = {
            "workers": self.workers,
            "lease_size": self.lease_size,
            "throughput_steals": stolen["steals"],
            "throughput_shards_stolen": stolen["shards_stolen"],
            "scenario_shards": scenario_shards,
            "scenario_steals": small_stolen["steals"],
            "virtual_speedup_vs_static": round(
                small_static["makespan"] / small_stolen["makespan"], 2
            ),
        }
        assert static["makespan"] >= stolen["makespan"]
