"""Two-level shard scheduling with work stealing -- the pure bookkeeping.

Level 1 is the driver's global pending queue of micro-shards (in shard-id
order); level 2 is the *lease*: a contiguous batch of micro-shards handed
to one worker in a single dispatch, amortising queue traffic at
million-shard scale.  When the pending queue runs dry and a worker goes
idle, the driver *steals*: it picks the victim with the largest unstarted
lease tail and revokes the tail's back half for the idle worker.

This module is deliberately process-free: it tracks assignments,
progress, revocations, and steal policy as plain data so that

- the engine (`repro.fleet.engine`) can map decisions onto real worker
  processes (where revocation is made race-free by each worker's shared
  control array -- see the engine), and
- the ``fleet_steal`` benchmark rig (`repro.fleet.bench`) can drive the
  *same* scheduling code under a virtual-time cost model, keeping the
  perf-gated number about scheduler cost, not process noise.

Stealing never moves a shard that might have started: the engine computes
the final cut under the victim's control lock and reports it back via
:meth:`record_steal`, so scheduler state tracks what actually happened.

Determinism note: steal decisions affect only *which worker runs what
when* -- shard seeds derive from the shard id and results are reduced in
shard-id order, so aggregates are byte-identical for any steal history.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence


@dataclass
class Lease:
    """One contiguous batch of micro-shards assigned to one worker."""

    lease_id: int
    items: List[Any]
    #: Highest position the worker is known to have *started* (-1: none).
    progress: int = -1
    #: Positions >= this are revoked (stolen); len(items) when intact.
    revoked_from: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.revoked_from < 0:
            self.revoked_from = len(self.items)

    @property
    def unstarted(self) -> int:
        """How many positions are still stealable (not started, not stolen)."""
        return max(0, self.revoked_from - (self.progress + 1))

    def live_items(self) -> List[Any]:
        """Items not revoked -- what the worker will actually attempt."""
        return self.items[: self.revoked_from]


class StealScheduler:
    """Lease/steal bookkeeping for one fleet run.

    *workers* are opaque ids; *items* is the pending micro-shard list in
    the order it should drain (shard-id order for determinism of *reduce*
    -- execution order itself carries no meaning).
    """

    def __init__(
        self,
        items: Sequence[Any],
        workers: Sequence[Any],
        lease_size: int,
        steal: bool = True,
    ) -> None:
        if lease_size < 1:
            raise ValueError(f"lease_size must be >= 1, got {lease_size}")
        self.pending: Deque[Any] = deque(items)
        self.lease_size = lease_size
        self.steal_enabled = steal
        self.lease_of: Dict[Any, Optional[Lease]] = {wid: None for wid in workers}
        self.leases_granted = 0
        self.steals = 0
        self.shards_stolen = 0
        self._next_lease_id = 0

    # -- worker lifecycle --------------------------------------------------

    def add_worker(self, worker_id: Any) -> None:
        self.lease_of.setdefault(worker_id, None)

    def remove_worker(self, worker_id: Any) -> None:
        self.lease_of.pop(worker_id, None)

    # -- leasing -----------------------------------------------------------

    def _grant(self, worker_id: Any, items: List[Any]) -> Lease:
        lease = Lease(lease_id=self._next_lease_id, items=items)
        self._next_lease_id += 1
        self.lease_of[worker_id] = lease
        self.leases_granted += 1
        return lease

    def lease(self, worker_id: Any) -> Optional[Lease]:
        """Grant the idle *worker_id* its next lease from the pending queue."""
        if self.lease_of.get(worker_id) is not None:
            raise ValueError(f"worker {worker_id!r} already holds a lease")
        if not self.pending:
            return None
        items = [
            self.pending.popleft()
            for _ in range(min(self.lease_size, len(self.pending)))
        ]
        return self._grant(worker_id, items)

    def release(self, worker_id: Any) -> None:
        """The worker finished (or abandoned) its lease."""
        self.lease_of[worker_id] = None

    def requeue(self, item: Any) -> None:
        """Return a failed shard to the back of the pending queue (retry)."""
        self.pending.append(item)

    def reclaim(self, worker_id: Any) -> List[Any]:
        """A worker died: its unstarted, unrevoked tail goes back to pending
        (at the front, preserving drain order); returns the reclaimed items."""
        lease = self.lease_of.get(worker_id)
        if lease is None:
            return []
        tail = lease.items[lease.progress + 1 : lease.revoked_from]
        for item in reversed(tail):
            self.pending.appendleft(item)
        self.lease_of[worker_id] = None
        return tail

    # -- progress ----------------------------------------------------------

    def note_progress(self, worker_id: Any, position: int) -> None:
        """Record the freshest started-position observation for a worker."""
        lease = self.lease_of.get(worker_id)
        if lease is not None and position > lease.progress:
            lease.progress = position

    # -- stealing ----------------------------------------------------------

    def plan_steal(self, thief_id: Any) -> Optional[Any]:
        """Pick the best victim for *thief_id*, or None if stealing is off,
        the pending queue still has work, or no victim has an unstarted
        tail worth taking.  Ties break on worker id for reproducible
        scheduling traces."""
        if not self.steal_enabled or self.pending:
            return None
        best = None
        best_key = (0, None)
        for worker_id, lease in self.lease_of.items():
            if worker_id == thief_id or lease is None:
                continue
            unstarted = lease.unstarted
            if unstarted > best_key[0]:
                best, best_key = worker_id, (unstarted, worker_id)
        return best

    def proposed_cut(self, victim_id: Any) -> Optional[int]:
        """The position the thief should take from: the back half of the
        victim's unstarted tail.  The engine may push this *later* (never
        earlier) after reading live progress under the victim's lock."""
        lease = self.lease_of.get(victim_id)
        if lease is None or lease.unstarted < 1:
            return None
        return lease.revoked_from - (lease.unstarted + 1) // 2

    def record_steal(
        self, victim_id: Any, thief_id: Any, cut: int
    ) -> Optional[Lease]:
        """Commit a steal: victim's positions [cut, revoked_from) move to a
        fresh lease for the thief.  Returns the thief's lease (None when the
        final cut left nothing to take)."""
        lease = self.lease_of[victim_id]
        if lease is None or cut >= lease.revoked_from:
            return None
        cut = max(cut, lease.progress + 1)
        if cut >= lease.revoked_from:
            return None
        stolen = lease.items[cut : lease.revoked_from]
        lease.revoked_from = cut
        self.steals += 1
        self.shards_stolen += len(stolen)
        return self._grant(thief_id, stolen)

    # -- queries -----------------------------------------------------------

    def busy(self, worker_id: Any) -> bool:
        return self.lease_of.get(worker_id) is not None

    def outstanding(self) -> bool:
        """Is there any work left to schedule or in flight?"""
        return bool(self.pending) or any(
            lease is not None for lease in self.lease_of.values()
        )


def default_lease_size(pending: int, workers: int) -> int:
    """Batch enough to amortise dispatch, little enough to keep the tail
    stealable: an eighth of a fair share, clamped to [1, 32]."""
    if workers < 1 or pending < 1:
        return 1
    return max(1, min(32, pending // (workers * 8)))
