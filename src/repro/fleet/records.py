"""The fleet result-record codec: deterministic struct-packed envelopes.

Shard envelopes are JSON-safe trees (dicts with string keys, lists,
strings, ints, floats, bools, None).  Historically they crossed the
worker->parent boundary as pickles; this codec replaces that with a
compact tag-length-value binary layout so the hot merge path never runs
the pickle machinery and the bytes are a *deterministic* function of the
value (dict keys are packed sorted).

Two extra twists tuned for the merge path:

- **Counter dicts pack as delta blobs.**  A non-empty ``str -> int`` dict
  packs with its own tag in the :meth:`repro.obs.counters.Counters.pack_deltas`
  layout, and unpacks (by default) to a :class:`PackedCounters` view --
  the streaming reducers feed that blob straight into
  :meth:`Counters.merge_packed` without materialising a dict per shard.
  ``unpack_record(..., materialize=True)`` restores plain dicts for exact
  round-trips (the spool read path).
- **No self-describing schema.**  The layout is versioned by the spool /
  ring framing around it, not per record; a record is only ever read by
  the build that wrote it or via the spool's version header.

Layout (little-endian):

===== ======================================================
tag   payload
===== ======================================================
``Z``  None
``T``  True
``F``  False
``I``  ``<q`` int
``G``  ``<I`` byte length + big-int bytes (signed, two's complement)
``D``  ``<d`` float
``S``  ``<I`` byte length + UTF-8 bytes
``B``  ``<I`` byte length + raw bytes
``L``  ``<I`` element count + packed elements
``M``  ``<I`` pair count + (packed str key, packed value) pairs, sorted
``C``  counter-delta blob (``Counters.pack_deltas`` layout)
===== ======================================================
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Iterator, List, Tuple, Union

from repro.fleet.errors import RecordFormatError
from repro.obs.counters import (
    _PACK_COUNT,
    _PACK_ENTRY_HEAD,
    _PACK_VALUE,
    Counters,
)

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

_I64_MIN = -(2 ** 63)
_I64_MAX = 2 ** 63 - 1

Buffer = Union[bytes, bytearray, memoryview]


class PackedCounters:
    """A zero-copy view of a counter-delta blob inside a packed record.

    The streaming reducers' unit of exchange: holds a memoryview over the
    record buffer and merges straight into a :class:`Counters` registry
    (or iterates lazily) without ever building an intermediate dict.
    """

    __slots__ = ("payload",)

    def __init__(self, payload: Buffer) -> None:
        self.payload = payload

    def merge_into(self, counters: Counters) -> None:
        """One-pass in-place merge -- the hot path."""
        counters.merge_packed(self.payload)

    def items(self) -> Iterator[Tuple[str, int]]:
        """Lazily yield (name, delta) pairs in packed (sorted) order."""
        payload = self.payload
        (entries,) = _PACK_COUNT.unpack_from(payload, 0)
        offset = _PACK_COUNT.size
        for _ in range(entries):
            (name_len,) = _PACK_ENTRY_HEAD.unpack_from(payload, offset)
            offset += _PACK_ENTRY_HEAD.size
            name = bytes(payload[offset:offset + name_len]).decode("utf-8")
            offset += name_len
            (value,) = _PACK_VALUE.unpack_from(payload, offset)
            offset += _PACK_VALUE.size
            yield name, value

    def to_dict(self) -> Dict[str, int]:
        return dict(self.items())

    def total(self) -> int:
        return sum(value for _, value in self.items())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PackedCounters):
            return self.to_dict() == other.to_dict()
        if isinstance(other, dict):
            return self.to_dict() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"PackedCounters({self.to_dict()!r})"


def _is_counter_dict(value: dict) -> bool:
    """True for non-empty pure ``str -> i64 int`` dicts (bools excluded)."""
    if not value:
        return False
    for key, item in value.items():
        if not isinstance(key, str):
            return False
        if isinstance(item, bool) or not isinstance(item, int):
            return False
        if not _I64_MIN <= item <= _I64_MAX:
            return False
    return True


def _pack_into(value: Any, parts: List[bytes]) -> None:
    if value is None:
        parts.append(b"Z")
    elif value is True:
        parts.append(b"T")
    elif value is False:
        parts.append(b"F")
    elif isinstance(value, int):
        if _I64_MIN <= value <= _I64_MAX:
            parts.append(b"I")
            parts.append(_I64.pack(value))
        else:
            raw = value.to_bytes(
                (value.bit_length() + 8) // 8, "little", signed=True
            )
            parts.append(b"G")
            parts.append(_U32.pack(len(raw)))
            parts.append(raw)
    elif isinstance(value, float):
        parts.append(b"D")
        parts.append(_F64.pack(value))
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        parts.append(b"S")
        parts.append(_U32.pack(len(encoded)))
        parts.append(encoded)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        parts.append(b"B")
        parts.append(_U32.pack(len(raw)))
        parts.append(raw)
    elif isinstance(value, (list, tuple)):
        parts.append(b"L")
        parts.append(_U32.pack(len(value)))
        for item in value:
            _pack_into(item, parts)
    elif isinstance(value, PackedCounters):
        parts.append(b"C")
        parts.append(bytes(value.payload))
    elif isinstance(value, dict):
        if _is_counter_dict(value):
            parts.append(b"C")
            parts.append(_PACK_COUNT.pack(len(value)))
            for key in sorted(value):
                encoded = key.encode("utf-8")
                parts.append(_PACK_ENTRY_HEAD.pack(len(encoded)))
                parts.append(encoded)
                parts.append(_PACK_VALUE.pack(value[key]))
        else:
            for key in value:
                if not isinstance(key, str):
                    raise RecordFormatError(
                        f"record dict keys must be str, got {key!r}"
                    )
            parts.append(b"M")
            parts.append(_U32.pack(len(value)))
            for key in sorted(value):
                _pack_into(key, parts)
                _pack_into(value[key], parts)
    else:
        raise RecordFormatError(
            f"value of type {type(value).__name__} is not record-packable: "
            f"{value!r}"
        )


def pack_record(value: Any) -> bytes:
    """Pack a JSON-safe envelope tree into deterministic bytes."""
    parts: List[bytes] = []
    _pack_into(value, parts)
    return b"".join(parts)


def _counter_blob_end(buf: Buffer, offset: int) -> int:
    (entries,) = _PACK_COUNT.unpack_from(buf, offset)
    offset += _PACK_COUNT.size
    for _ in range(entries):
        (name_len,) = _PACK_ENTRY_HEAD.unpack_from(buf, offset)
        offset += _PACK_ENTRY_HEAD.size + name_len + _PACK_VALUE.size
    return offset


def _unpack_from(buf: Buffer, offset: int, materialize: bool) -> Tuple[Any, int]:
    try:
        tag = buf[offset:offset + 1]
        if not tag:
            raise RecordFormatError("truncated record: missing tag byte")
        tag = bytes(tag)
        offset += 1
        if tag == b"Z":
            return None, offset
        if tag == b"T":
            return True, offset
        if tag == b"F":
            return False, offset
        if tag == b"I":
            return _I64.unpack_from(buf, offset)[0], offset + _I64.size
        if tag == b"G":
            (length,) = _U32.unpack_from(buf, offset)
            offset += _U32.size
            raw = bytes(buf[offset:offset + length])
            return int.from_bytes(raw, "little", signed=True), offset + length
        if tag == b"D":
            return _F64.unpack_from(buf, offset)[0], offset + _F64.size
        if tag == b"S":
            (length,) = _U32.unpack_from(buf, offset)
            offset += _U32.size
            return (
                bytes(buf[offset:offset + length]).decode("utf-8"),
                offset + length,
            )
        if tag == b"B":
            (length,) = _U32.unpack_from(buf, offset)
            offset += _U32.size
            return bytes(buf[offset:offset + length]), offset + length
        if tag == b"L":
            (count,) = _U32.unpack_from(buf, offset)
            offset += _U32.size
            items = []
            for _ in range(count):
                item, offset = _unpack_from(buf, offset, materialize)
                items.append(item)
            return items, offset
        if tag == b"M":
            (count,) = _U32.unpack_from(buf, offset)
            offset += _U32.size
            mapping: Dict[str, Any] = {}
            for _ in range(count):
                key, offset = _unpack_from(buf, offset, materialize)
                value, offset = _unpack_from(buf, offset, materialize)
                mapping[key] = value
            return mapping, offset
        if tag == b"C":
            end = _counter_blob_end(buf, offset)
            view = memoryview(buf)[offset:end] if not isinstance(
                buf, memoryview
            ) else buf[offset:end]
            packed = PackedCounters(view)
            if materialize:
                return packed.to_dict(), end
            return packed, end
    except struct.error as error:
        raise RecordFormatError(f"truncated record: {error}") from None
    raise RecordFormatError(f"unknown record tag {tag!r} at offset {offset - 1}")


def unpack_record(buf: Buffer, materialize: bool = False) -> Any:
    """Unpack one record.

    With ``materialize=False`` (the merge path) counter dicts come back as
    :class:`PackedCounters` views over *buf* -- zero copies, merge in
    place.  With ``materialize=True`` (the spool read path) the exact
    original tree is restored.
    """
    value, end = _unpack_from(buf, 0, materialize)
    if end != len(buf):
        raise RecordFormatError(
            f"trailing garbage after record: consumed {end} of {len(buf)} bytes"
        )
    return value
