"""The sharded multi-process population engine.

``run_fleet`` drives a study's shard list to completion:

- **workers=1** runs shards inline, in order -- the reference executor
  (exceptions still get bounded retries and quarantine);
- **workers>1** dispatches shards to a pool of forked worker processes,
  each with a private task queue and a shared result queue.  The driver
  enforces a per-shard wall-clock deadline (an over-deadline worker is
  terminated and replaced), retries failed shards a bounded number of
  times, and quarantines shards that keep failing instead of crashing the
  run.

Either way, every completed shard is checkpointed to the spool before it
counts as done, and aggregation reads the checkpoints back in shard-index
order -- so the aggregate is a pure function of (study, seed, population,
params), independent of worker count, scheduling, retries, or resumption.
Wall-clock timings live only on the :class:`FleetReport`, never inside the
aggregate, to keep the aggregate JSON byte-stable.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import queue as queue_module
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

from repro.fleet.errors import FleetError
from repro.fleet.spool import Spool
from repro.fleet.studies import ShardSpec, get_study

#: How long the driver sleeps on the result queue between bookkeeping
#: passes (deadline checks, dispatch) -- the engine's reaction latency.
_POLL_SECONDS = 0.05


@dataclass
class QuarantinedShard:
    """A shard that exhausted its retry budget."""

    index: int
    attempts: int
    reason: str

    def to_dict(self) -> Dict[str, Any]:
        return {"index": self.index, "attempts": self.attempts, "reason": self.reason}


@dataclass
class FleetReport:
    """Everything one fleet run produced, for humans and machines."""

    study: str
    population: int
    seed: int
    workers: int
    total_shards: int
    executed: List[int] = field(default_factory=list)
    resumed: List[int] = field(default_factory=list)
    retries: int = 0
    quarantined: List[QuarantinedShard] = field(default_factory=list)
    wall_seconds: float = 0.0
    spool_dir: Optional[str] = None
    aggregate: Dict[str, Any] = field(default_factory=dict)

    def aggregate_json(self) -> str:
        """The canonical aggregate serialisation.

        ``sort_keys`` + fixed separators + trailing newline: two runs with
        the same study inputs produce byte-identical files, which is the
        determinism contract CI diffs against.
        """
        return json.dumps(self.aggregate, sort_keys=True, indent=2) + "\n"

    def render(self) -> str:
        lines = [
            f"fleet {self.study!r}: population {self.population}, seed {self.seed}",
            f"  shards                 : {self.total_shards}",
            f"  executed / resumed     : {len(self.executed)} / {len(self.resumed)}",
            f"  retries                : {self.retries}",
            f"  quarantined            : {len(self.quarantined)}",
            f"  workers                : {self.workers}",
            f"  wall clock             : {self.wall_seconds:.2f} s",
        ]
        for shard in self.quarantined:
            lines.append(
                f"    !! shard {shard.index}: {shard.reason} "
                f"(after {shard.attempts} attempts)"
            )
        return "\n".join(lines)


def _worker_loop(
    worker_id: int,
    task_queue: "multiprocessing.Queue",
    result_queue: "multiprocessing.Queue",
    spool_root: str,
) -> None:
    """Worker body: pull specs, run them, checkpoint, report home.

    The checkpoint write happens *in the worker*, before the "done"
    message -- if the driver dies, finished work is already durable.
    """
    spool = Spool(spool_root)
    while True:
        spec = task_queue.get()
        if spec is None:
            return
        started = time.perf_counter()
        try:
            study = get_study(spec.study)
            result = study.run_shard(spec)
            spool.write_shard(spec.to_dict(), result)
        except BaseException as error:  # noqa: BLE001 - forwarded to driver
            result_queue.put(
                ("error", worker_id, spec.index, f"{type(error).__name__}: {error}")
            )
        else:
            result_queue.put(
                ("done", worker_id, spec.index, time.perf_counter() - started)
            )


class _WorkerHandle:
    """Driver-side state for one worker process."""

    def __init__(self, worker_id: int, ctx, result_queue, spool_root: str) -> None:
        self.worker_id = worker_id
        self.task_queue = ctx.Queue()
        self.process = ctx.Process(
            target=_worker_loop,
            args=(worker_id, self.task_queue, result_queue, spool_root),
            daemon=True,
            name=f"fleet-worker-{worker_id}",
        )
        self.process.start()
        self.current: Optional[ShardSpec] = None
        self.started_at: float = 0.0

    @property
    def busy(self) -> bool:
        return self.current is not None

    def dispatch(self, spec: ShardSpec) -> None:
        self.current = spec
        self.started_at = time.monotonic()
        self.task_queue.put(spec)

    def overdue(self, timeout_seconds: Optional[float]) -> bool:
        return (
            self.busy
            and timeout_seconds is not None
            and time.monotonic() - self.started_at > timeout_seconds
        )

    def shutdown(self) -> None:
        if self.process.is_alive():
            self.task_queue.put(None)
            self.process.join(timeout=2.0)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=2.0)
        self.task_queue.close()

    def kill(self) -> None:
        """Terminate a misbehaving worker immediately."""
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)
        self.task_queue.close()


def _mp_context():
    """Fork where available (Linux): cheap worker start-up and test studies
    registered in the parent are inherited by children."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def run_fleet(
    study_name: str,
    population: int,
    seed: int = 2016,
    workers: int = 1,
    params: Optional[Dict[str, Any]] = None,
    spool_dir: Optional[str] = None,
    timeout_seconds: Optional[float] = 300.0,
    max_retries: int = 2,
) -> FleetReport:
    """Run *study_name* over a *population*, sharded across *workers*.

    With *spool_dir* set, the run is resumable: completed shards are read
    back from disk and only the missing ones execute.  Without it, a
    temporary spool keeps the same code path but is deleted on return.
    """
    if population < 1:
        raise FleetError(f"population must be >= 1, got {population}")
    if workers < 1:
        raise FleetError(f"workers must be >= 1, got {workers}")
    study = get_study(study_name)
    params = dict(params or {})
    started = time.perf_counter()

    if spool_dir is None:
        with tempfile.TemporaryDirectory(prefix="repro-fleet-") as scratch:
            report = _run_with_spool(
                study, population, seed, workers, params, scratch,
                timeout_seconds, max_retries,
            )
            report.spool_dir = None  # scratch dir is gone; do not advertise it
    else:
        report = _run_with_spool(
            study, population, seed, workers, params, spool_dir,
            timeout_seconds, max_retries,
        )
    report.wall_seconds = time.perf_counter() - started
    return report


def _run_with_spool(
    study,
    population: int,
    seed: int,
    workers: int,
    params: Dict[str, Any],
    spool_dir: str,
    timeout_seconds: Optional[float],
    max_retries: int,
) -> FleetReport:
    spool = Spool(spool_dir)
    specs = study.build_shards(population, seed, params)
    spool.ensure_manifest(
        {
            "study": study.name,
            "population": population,
            "seed": seed,
            "params": {key: params[key] for key in sorted(params)},
            "shards": len(specs),
        }
    )
    known = {spec.index for spec in specs}
    completed = spool.completed_indexes() & known
    pending = [spec for spec in specs if spec.index not in completed]

    report = FleetReport(
        study=study.name,
        population=population,
        seed=seed,
        workers=workers,
        total_shards=len(specs),
        resumed=sorted(completed),
        spool_dir=spool_dir,
    )

    if pending:
        if workers == 1:
            _execute_inline(study, pending, spool, max_retries, report)
        else:
            _execute_pool(
                study, pending, spool, workers, timeout_seconds, max_retries, report
            )

    healthy = [
        spec.index
        for spec in specs
        if spec.index not in {shard.index for shard in report.quarantined}
    ]
    envelopes = [spool.read_shard(index) for index in sorted(healthy)]
    meta = {
        "study": study.name,
        "population": population,
        "seed": seed,
        "params": {key: params[key] for key in sorted(params)},
        "shards": len(specs),
        "quarantined_shards": sorted(shard.index for shard in report.quarantined),
    }
    report.aggregate = study.aggregate(envelopes, meta)
    return report


def _execute_inline(
    study, pending: List[ShardSpec], spool: Spool, max_retries: int, report: FleetReport
) -> None:
    """The workers=1 path: same retry/quarantine semantics, no processes.

    (Wall-clock timeouts need a killable process, so they are enforced
    only by the pool executor.)
    """
    for spec in pending:
        failures = 0
        while True:
            try:
                result = study.run_shard(spec)
                spool.write_shard(spec.to_dict(), result)
            except Exception as error:  # noqa: BLE001 - quarantine, don't crash
                failures += 1
                if failures > max_retries:
                    # A failed attempt may still have left a checkpoint
                    # (e.g. the run_shard wrote it before dying); drop it
                    # so a resume re-executes the shard instead of
                    # adopting a result this run declared failed.
                    spool.discard_shard(spec.index)
                    report.quarantined.append(
                        QuarantinedShard(
                            index=spec.index,
                            attempts=failures,
                            reason=f"{type(error).__name__}: {error}",
                        )
                    )
                    break
                report.retries += 1
            else:
                report.executed.append(spec.index)
                break
    report.executed.sort()


def _execute_pool(
    study,
    pending: List[ShardSpec],
    spool: Spool,
    workers: int,
    timeout_seconds: Optional[float],
    max_retries: int,
    report: FleetReport,
) -> None:
    ctx = _mp_context()
    result_queue = ctx.Queue()
    spool_root = str(spool.root)
    pool: Dict[int, _WorkerHandle] = {}
    next_worker_id = 0

    def spawn_worker() -> None:
        nonlocal next_worker_id
        handle = _WorkerHandle(next_worker_id, ctx, result_queue, spool_root)
        pool[next_worker_id] = handle
        next_worker_id += 1

    for _ in range(min(workers, len(pending))):
        spawn_worker()

    todo: Deque[ShardSpec] = deque(pending)
    spec_by_index = {spec.index: spec for spec in pending}
    failures: Dict[int, int] = {}
    done: set = set()
    quarantined_indexes: set = set()

    def record_failure(spec: ShardSpec, reason: str) -> None:
        failures[spec.index] = failures.get(spec.index, 0) + 1
        if failures[spec.index] > max_retries:
            # A worker killed on deadline may already have checkpointed the
            # shard before the kill landed; a surviving file would let a
            # later resume silently adopt a quarantined shard as done.
            spool.discard_shard(spec.index)
            quarantined_indexes.add(spec.index)
            report.quarantined.append(
                QuarantinedShard(
                    index=spec.index, attempts=failures[spec.index], reason=reason
                )
            )
        else:
            report.retries += 1
            todo.append(spec)

    def handle_message(message) -> None:
        kind, worker_id, shard_index, detail = message
        handle = pool.get(worker_id)
        if (
            handle is not None
            and handle.current is not None
            and handle.current.index == shard_index
        ):
            handle.current = None
        if kind == "done":
            if shard_index in quarantined_indexes:
                # A late completion from a worker we already gave up on:
                # the shard stays quarantined, so its checkpoint must not
                # survive into a resume either.
                spool.discard_shard(shard_index)
                return
            done.add(shard_index)
        elif shard_index not in done:
            record_failure(spec_by_index[shard_index], detail)

    try:
        while todo or any(handle.busy for handle in pool.values()):
            # 1. Drain every finished/failed notification first, so the
            #    deadline pass below never kills a worker that already
            #    reported completion.
            while True:
                try:
                    handle_message(result_queue.get_nowait())
                except queue_module.Empty:
                    break

            # 2. Deadline + liveness pass: replace overdue or dead workers.
            for worker_id, handle in list(pool.items()):
                if handle.overdue(timeout_seconds):
                    spec = handle.current
                    handle.kill()
                    del pool[worker_id]
                    spawn_worker()
                    record_failure(
                        spec,
                        f"timeout: exceeded {timeout_seconds:.1f}s wall-clock budget",
                    )
                elif handle.busy and not handle.process.is_alive():
                    spec = handle.current
                    handle.kill()
                    del pool[worker_id]
                    spawn_worker()
                    record_failure(
                        spec,
                        f"worker died (exit code {handle.process.exitcode})",
                    )

            # 3. Feed idle workers.
            for handle in pool.values():
                if todo and not handle.busy and handle.process.is_alive():
                    handle.dispatch(todo.popleft())

            # 4. Block briefly for the next event.
            try:
                handle_message(result_queue.get(timeout=_POLL_SECONDS))
            except queue_module.Empty:
                pass
    finally:
        for handle in pool.values():
            handle.shutdown()
        result_queue.close()

    report.executed = sorted(done)
