"""The sharded multi-process population engine.

``run_fleet`` drives a study's shard list to completion:

- **workers=1** runs shards inline, in order -- the reference executor
  (exceptions still get bounded retries and quarantine);
- **workers>1** dispatches *leases* (contiguous batches of micro-shards,
  see :mod:`repro.fleet.scheduler`) to a pool of forked worker processes.
  The driver enforces a per-shard wall-clock deadline (an over-deadline
  worker is terminated and replaced), retries failed shards a bounded
  number of times, quarantines shards that keep failing instead of
  crashing the run, and -- when the global queue runs dry -- *steals* the
  unstarted tail of the most loaded worker's lease for whoever is idle,
  so one straggler shard never serialises the fleet.

Result records travel over per-worker shared-memory rings
(:mod:`repro.fleet.shm_ring`) in the deterministic packed codec of
:mod:`repro.fleet.records`; the driver folds them through the study's
:class:`~repro.fleet.reducers.StreamingReducer` strictly in shard-index
order (:class:`~repro.fleet.reducers.OrderedFold`), so parent memory
holds the out-of-order window, not the population.  Studies without a
reducer keep the legacy materialise-then-aggregate path.

Work stealing is race-free by construction: each worker owns a tiny
shared control array ``[lease_id, progress, revoke_from]`` guarded by a
lock.  The worker bumps ``progress`` under the lock before starting each
position; the driver revokes a tail by lowering ``revoke_from`` under the
same lock after re-reading live progress.  A position therefore runs on
exactly one worker, and since every shard's seed derives from its shard
id (never from scheduling) and reduction is by shard id (never arrival
order), the aggregate is a pure function of (study, seed, population,
params) -- byte-identical for any worker count, lease size, steal
history, retry pattern, or resumption.  Wall-clock timings live only on
the :class:`FleetReport`, never inside the aggregate.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import queue as queue_module
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.fleet.errors import FleetError
from repro.fleet.records import unpack_record
from repro.fleet.reducers import OrderedFold
from repro.fleet.scheduler import Lease, StealScheduler, default_lease_size
from repro.fleet.shm_ring import DEFAULT_RING_BYTES, ShmRing
from repro.fleet.spool import Spool
from repro.fleet.studies import ShardSpec, get_study

#: How long the driver sleeps on the result queue between bookkeeping
#: passes (deadline checks, dispatch, ring drains) -- the engine's
#: reaction latency.
_POLL_SECONDS = 0.05

#: Bound on lock acquisitions against a worker that may be wedged or dead.
_LOCK_TIMEOUT = 0.2

#: Control-array slots (one ``<q`` each): the lease the worker is on, the
#: highest position it has started, and the position its lease is revoked
#: from (== lease length while intact).
_CTL_LEASE, _CTL_PROGRESS, _CTL_REVOKE = 0, 1, 2


@dataclass
class QuarantinedShard:
    """A shard that exhausted its retry budget."""

    index: int
    attempts: int
    reason: str

    def to_dict(self) -> Dict[str, Any]:
        return {"index": self.index, "attempts": self.attempts, "reason": self.reason}


@dataclass
class FleetReport:
    """Everything one fleet run produced, for humans and machines."""

    study: str
    population: int
    seed: int
    workers: int
    total_shards: int
    executed: List[int] = field(default_factory=list)
    resumed: List[int] = field(default_factory=list)
    retries: int = 0
    quarantined: List[QuarantinedShard] = field(default_factory=list)
    wall_seconds: float = 0.0
    spool_dir: Optional[str] = None
    aggregate: Dict[str, Any] = field(default_factory=dict)
    lease_size: int = 1
    leases: int = 0
    steals: int = 0
    shards_stolen: int = 0
    peak_buffered_records: int = 0
    streamed: bool = False

    def aggregate_json(self) -> str:
        """The canonical aggregate serialisation.

        ``sort_keys`` + fixed separators + trailing newline: two runs with
        the same study inputs produce byte-identical files, which is the
        determinism contract CI diffs against.
        """
        return json.dumps(self.aggregate, sort_keys=True, indent=2) + "\n"

    def render(self) -> str:
        lines = [
            f"fleet {self.study!r}: population {self.population}, seed {self.seed}",
            f"  shards                 : {self.total_shards}",
            f"  executed / resumed     : {len(self.executed)} / {len(self.resumed)}",
            f"  retries                : {self.retries}",
            f"  quarantined            : {len(self.quarantined)}",
            f"  workers                : {self.workers}",
            f"  lease / steals         : {self.lease_size} / {self.steals} "
            f"({self.shards_stolen} shards stolen)",
            f"  merge                  : "
            f"{'streaming' if self.streamed else 'materialised'}"
            f" (peak {self.peak_buffered_records} records buffered)",
            f"  wall clock             : {self.wall_seconds:.2f} s",
        ]
        for shard in self.quarantined:
            lines.append(
                f"    !! shard {shard.index}: {shard.reason} "
                f"(after {shard.attempts} attempts)"
            )
        return "\n".join(lines)


def _worker_loop(
    worker_id: int,
    task_queue: "multiprocessing.Queue",
    result_queue: "multiprocessing.Queue",
    spool_root: str,
    control,
    control_lock,
    ring: Optional[ShmRing],
) -> None:
    """Worker body: pull leases, run their shards, checkpoint, report home.

    The checkpoint write happens *in the worker*, before the "done"
    message -- if the driver dies, finished work is already durable.  The
    packed record is pushed onto the shared-memory ring after the
    checkpoint (best effort: a full ring just means the driver reads that
    record back from the spool).

    Before each position the worker takes the control lock to honour a
    revocation and publish its progress; that handshake is the entire
    steal protocol from the worker's side.
    """
    spool = Spool(spool_root)
    while True:
        task = task_queue.get()
        if task is None:
            return
        lease_id, specs = task
        with control_lock:
            control[_CTL_REVOKE] = len(specs)
            control[_CTL_PROGRESS] = -1
            control[_CTL_LEASE] = lease_id
        for position, spec in enumerate(specs):
            with control_lock:
                if control[_CTL_REVOKE] <= position:
                    break
                control[_CTL_PROGRESS] = position
            started = time.perf_counter()
            try:
                study = get_study(spec.study)
                result = study.run_shard(spec)
                packed = spool.write_shard(spec.to_dict(), result)
                if ring is not None and ring.fits(len(packed)):
                    ring.try_push(spec.index, packed)
            except BaseException as error:  # noqa: BLE001 - forwarded to driver
                result_queue.put(
                    ("error", worker_id, spec.index,
                     f"{type(error).__name__}: {error}")
                )
            else:
                result_queue.put(
                    ("done", worker_id, spec.index,
                     time.perf_counter() - started)
                )
        result_queue.put(("lease_done", worker_id, lease_id, None))


class _WorkerHandle:
    """Driver-side state for one worker process."""

    def __init__(
        self,
        worker_id: int,
        ctx,
        result_queue,
        spool_root: str,
        ring_bytes: Optional[int],
    ) -> None:
        self.worker_id = worker_id
        self.task_queue = ctx.Queue()
        self.control = ctx.Array("q", 3, lock=False)
        self.control_lock = ctx.Lock()
        self.control[_CTL_LEASE] = -1
        self.ring: Optional[ShmRing] = None
        if ring_bytes is not None:
            self.ring = ShmRing(ring_bytes, ctx.Lock())
        self.process = ctx.Process(
            target=_worker_loop,
            args=(
                worker_id, self.task_queue, result_queue, spool_root,
                self.control, self.control_lock, self.ring,
            ),
            daemon=True,
            name=f"fleet-worker-{worker_id}",
        )
        self.process.start()
        self.lease: Optional[Lease] = None
        self.position_of: Dict[int, int] = {}
        self.resolved_position: int = -1
        self.seen_progress: int = -1
        self.last_activity: float = time.monotonic()

    @property
    def busy(self) -> bool:
        return self.lease is not None

    def dispatch(self, lease: Lease) -> None:
        self.lease = lease
        self.position_of = {
            spec.index: position for position, spec in enumerate(lease.items)
        }
        self.resolved_position = -1
        self.seen_progress = -1
        self.last_activity = time.monotonic()
        self.task_queue.put((lease.lease_id, lease.items))

    def clear_lease(self) -> None:
        self.lease = None
        self.position_of = {}
        self.resolved_position = -1
        self.seen_progress = -1

    def read_control(self):
        """(lease_id, progress, revoke_from), best effort.

        Falls back to a dirty read if the worker sits on the lock longer
        than the bound -- acceptable at kill time, when the values only
        steer blame and reclamation, never correctness of results.
        """
        acquired = self.control_lock.acquire(timeout=_LOCK_TIMEOUT)
        try:
            return (
                self.control[_CTL_LEASE],
                self.control[_CTL_PROGRESS],
                self.control[_CTL_REVOKE],
            )
        finally:
            if acquired:
                self.control_lock.release()

    def shutdown(self) -> None:
        if self.process.is_alive():
            self.task_queue.put(None)
            self.process.join(timeout=2.0)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=2.0)
        self.task_queue.close()

    def kill(self) -> None:
        """Terminate a misbehaving worker immediately."""
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)
        self.task_queue.close()

    def destroy_ring(self) -> None:
        if self.ring is not None:
            self.ring.close()
            self.ring.unlink()
            self.ring = None


def _mp_context():
    """Fork where available (Linux): cheap worker start-up, test studies
    registered in the parent are inherited by children, and the rings'
    mapped views survive into the child without re-attachment."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def run_fleet(
    study_name: str,
    population: int,
    seed: int = 2016,
    workers: int = 1,
    params: Optional[Dict[str, Any]] = None,
    spool_dir: Optional[str] = None,
    timeout_seconds: Optional[float] = 300.0,
    max_retries: int = 2,
    lease_size: Optional[int] = None,
    steal: bool = True,
    streaming: Optional[bool] = None,
    ring_bytes: int = DEFAULT_RING_BYTES,
) -> FleetReport:
    """Run *study_name* over a *population*, sharded across *workers*.

    With *spool_dir* set, the run is resumable: completed shards are read
    back from disk and only the missing ones execute.  Without it, a
    temporary spool keeps the same code path but is deleted on return.

    *lease_size* is the micro-shards-per-dispatch batch (default: scaled
    from the pending count); *steal* enables tail stealing from loaded
    workers.  *streaming* forces the merge path: ``None`` uses the
    study's :class:`~repro.fleet.reducers.StreamingReducer` when it has
    one, ``False`` forces the legacy materialise-everything aggregate
    (the two serialise byte-identically).
    """
    if population < 1:
        raise FleetError(f"population must be >= 1, got {population}")
    if workers < 1:
        raise FleetError(f"workers must be >= 1, got {workers}")
    study = get_study(study_name)
    params = dict(params or {})
    started = time.perf_counter()

    if spool_dir is None:
        with tempfile.TemporaryDirectory(prefix="repro-fleet-") as scratch:
            report = _run_with_spool(
                study, population, seed, workers, params, scratch,
                timeout_seconds, max_retries, lease_size, steal, streaming,
                ring_bytes,
            )
            report.spool_dir = None  # scratch dir is gone; do not advertise it
    else:
        report = _run_with_spool(
            study, population, seed, workers, params, spool_dir,
            timeout_seconds, max_retries, lease_size, steal, streaming,
            ring_bytes,
        )
    report.wall_seconds = time.perf_counter() - started
    return report


def _run_with_spool(
    study,
    population: int,
    seed: int,
    workers: int,
    params: Dict[str, Any],
    spool_dir: str,
    timeout_seconds: Optional[float],
    max_retries: int,
    lease_size: Optional[int],
    steal: bool,
    streaming: Optional[bool],
    ring_bytes: int,
) -> FleetReport:
    spool = Spool(spool_dir)
    specs = study.build_shards(population, seed, params)
    spool.ensure_manifest(
        {
            "study": study.name,
            "population": population,
            "seed": seed,
            "params": {key: params[key] for key in sorted(params)},
            "shards": len(specs),
        }
    )
    known = {spec.index for spec in specs}
    completed = spool.completed_indexes() & known
    pending = [spec for spec in specs if spec.index not in completed]

    report = FleetReport(
        study=study.name,
        population=population,
        seed=seed,
        workers=workers,
        total_shards=len(specs),
        resumed=sorted(completed),
        spool_dir=spool_dir,
    )

    use_streaming = streaming is not False and study.streaming is not None
    fold: Optional[OrderedFold] = None
    if use_streaming:
        fold = OrderedFold(
            study.streaming(),
            [spec.index for spec in specs],
            reader=lambda index: unpack_record(spool.read_shard_packed(index)),
        )
        report.streamed = True
        for index in sorted(completed):
            fold.offer_resident(index)

    if pending:
        if workers == 1:
            report.lease_size = 1
            _execute_inline(study, pending, spool, max_retries, report, fold)
        else:
            report.lease_size = (
                lease_size
                if lease_size is not None
                else default_lease_size(len(pending), workers)
            )
            _execute_pool(
                study, pending, spool, workers, timeout_seconds, max_retries,
                report, fold, report.lease_size, steal, ring_bytes,
            )

    meta = {
        "study": study.name,
        "population": population,
        "seed": seed,
        "params": {key: params[key] for key in sorted(params)},
        "shards": len(specs),
        "quarantined_shards": sorted(shard.index for shard in report.quarantined),
    }
    if fold is not None:
        report.aggregate = fold.finalize(meta)
        report.peak_buffered_records = fold.peak_buffered
    else:
        healthy = [
            spec.index
            for spec in specs
            if spec.index not in {shard.index for shard in report.quarantined}
        ]
        envelopes = [spool.read_shard(index) for index in sorted(healthy)]
        report.aggregate = study.aggregate(envelopes, meta)
    return report


def _execute_inline(
    study,
    pending: List[ShardSpec],
    spool: Spool,
    max_retries: int,
    report: FleetReport,
    fold: Optional[OrderedFold],
) -> None:
    """The workers=1 path: same retry/quarantine semantics, no processes.

    (Wall-clock timeouts need a killable process, so they are enforced
    only by the pool executor.)  With a fold, each shard's record streams
    into the reducer right after its checkpoint -- the cursor tracks
    execution, so nothing buffers.
    """
    for spec in pending:
        failures = 0
        while True:
            try:
                result = study.run_shard(spec)
                packed = spool.write_shard(spec.to_dict(), result)
            except Exception as error:  # noqa: BLE001 - quarantine, don't crash
                failures += 1
                if failures > max_retries:
                    # A failed attempt may still have left a checkpoint
                    # (e.g. the run_shard wrote it before dying); drop it
                    # so a resume re-executes the shard instead of
                    # adopting a result this run declared failed.
                    spool.discard_shard(spec.index)
                    if fold is not None:
                        fold.skip(spec.index)
                    report.quarantined.append(
                        QuarantinedShard(
                            index=spec.index,
                            attempts=failures,
                            reason=f"{type(error).__name__}: {error}",
                        )
                    )
                    break
                report.retries += 1
            else:
                if fold is not None:
                    fold.offer(
                        spec.index,
                        lambda payload=packed: unpack_record(payload),
                    )
                report.executed.append(spec.index)
                break
    report.executed.sort()


def _execute_pool(
    study,
    pending: List[ShardSpec],
    spool: Spool,
    workers: int,
    timeout_seconds: Optional[float],
    max_retries: int,
    report: FleetReport,
    fold: Optional[OrderedFold],
    lease_size: int,
    steal: bool,
    ring_bytes: int,
) -> None:
    ctx = _mp_context()
    # Rings ride fork-inherited mappings; without fork the packed records
    # simply come back off the spool (same bytes, same fold).
    use_rings = fold is not None and ctx.get_start_method() == "fork"
    result_queue = ctx.Queue()
    spool_root = str(spool.root)
    pool: Dict[int, _WorkerHandle] = {}
    next_worker_id = 0

    scheduler = StealScheduler(pending, [], lease_size, steal=steal)
    spec_by_index = {spec.index: spec for spec in pending}
    failures: Dict[int, int] = {}
    done: set = set()
    quarantined_indexes: set = set()
    #: Packed records drained from the rings, awaiting their "done".
    ring_records: Dict[int, bytes] = {}

    def spawn_worker() -> None:
        nonlocal next_worker_id
        handle = _WorkerHandle(
            next_worker_id, ctx, result_queue, spool_root,
            ring_bytes if use_rings else None,
        )
        pool[next_worker_id] = handle
        scheduler.add_worker(next_worker_id)
        next_worker_id += 1

    def drain_ring(handle: _WorkerHandle, timeout: Optional[float] = None) -> None:
        if handle.ring is None:
            return
        for index, _flags, payload in handle.ring.drain(timeout=timeout):
            ring_records[index] = payload

    def record_failure(spec: ShardSpec, reason: str) -> None:
        failures[spec.index] = failures.get(spec.index, 0) + 1
        if failures[spec.index] > max_retries:
            # A worker killed on deadline may already have checkpointed the
            # shard before the kill landed; a surviving file would let a
            # later resume silently adopt a quarantined shard as done.
            spool.discard_shard(spec.index)
            ring_records.pop(spec.index, None)
            quarantined_indexes.add(spec.index)
            if fold is not None:
                fold.skip(spec.index)
            report.quarantined.append(
                QuarantinedShard(
                    index=spec.index, attempts=failures[spec.index], reason=reason
                )
            )
        else:
            report.retries += 1
            scheduler.requeue(spec)

    def handle_message(message) -> None:
        kind, worker_id, first, second = message
        handle = pool.get(worker_id)
        if handle is not None:
            handle.last_activity = time.monotonic()
        if kind == "lease_done":
            if (
                handle is not None
                and handle.lease is not None
                and handle.lease.lease_id == first
            ):
                scheduler.release(worker_id)
                handle.clear_lease()
            return
        shard_index = first
        if handle is not None:
            position = handle.position_of.get(shard_index)
            if position is not None and position > handle.resolved_position:
                handle.resolved_position = position
                scheduler.note_progress(worker_id, position)
        if kind == "done":
            if shard_index in quarantined_indexes:
                # A late completion from a worker we already gave up on:
                # the shard stays quarantined, so its checkpoint must not
                # survive into a resume either.
                spool.discard_shard(shard_index)
                ring_records.pop(shard_index, None)
                return
            if shard_index in done:
                return
            done.add(shard_index)
            if fold is not None:
                if (
                    shard_index not in ring_records
                    and handle is not None
                    and handle.ring is not None
                ):
                    # The frame was pushed before this message was sent
                    # (same worker, FIFO), so one targeted drain finds it
                    # unless the ring was full and the worker skipped it.
                    drain_ring(handle)
                payload = ring_records.pop(shard_index, None)
                if payload is not None:
                    fold.offer(
                        shard_index,
                        lambda packed=payload: unpack_record(packed),
                    )
                else:
                    fold.offer_resident(shard_index)
        elif shard_index not in done and shard_index not in quarantined_indexes:
            record_failure(spec_by_index[shard_index], second)

    def replace_worker(handle: _WorkerHandle, reason: str, timeout: bool) -> None:
        """Kill + respawn a wedged/dead worker, blaming the right shard.

        The shard being run when the worker stopped responding gets the
        failure; unstarted lease positions go back to the front of the
        pending queue unblamed (they never ran).
        """
        worker_id = handle.worker_id
        lease = handle.lease
        blamed: Optional[ShardSpec] = None
        if lease is not None:
            lease_id, progress, _revoke = handle.read_control()
            started = progress if lease_id == lease.lease_id else -1
            if started > handle.resolved_position:
                blamed = lease.items[started]
            elif timeout:
                # No position is in flight (hung before pickup or between
                # positions); blame the next unstarted one so a systematic
                # hang still burns a retry budget instead of looping.
                next_position = max(started, handle.resolved_position) + 1
                if next_position < lease.revoked_from:
                    blamed = lease.items[next_position]
            reclaim_floor = max(started, handle.resolved_position)
            if blamed is not None:
                reclaim_floor = max(reclaim_floor, lease.items.index(blamed))
            scheduler.note_progress(worker_id, reclaim_floor)
        drain_ring(handle, timeout=_LOCK_TIMEOUT)
        handle.kill()
        handle.destroy_ring()
        scheduler.reclaim(worker_id)
        scheduler.remove_worker(worker_id)
        del pool[worker_id]
        spawn_worker()
        if blamed is not None:
            record_failure(blamed, reason)

    def try_steal(thief_id: int, thief: _WorkerHandle) -> bool:
        victim_id = scheduler.plan_steal(thief_id)
        if victim_id is None:
            return False
        victim = pool.get(victim_id)
        if victim is None or victim.lease is None:
            return False
        planned = scheduler.proposed_cut(victim_id)
        if planned is None:
            return False
        # The cut is committed under the victim's control lock against its
        # *live* progress, so a revoked position can never have started.
        if not victim.control_lock.acquire(timeout=_LOCK_TIMEOUT):
            return False
        try:
            if victim.control[_CTL_LEASE] != victim.lease.lease_id:
                return False  # lease not picked up yet; steal next pass
            progress = victim.control[_CTL_PROGRESS]
            cut = max(planned, progress + 1)
            if cut >= victim.control[_CTL_REVOKE]:
                return False
            victim.control[_CTL_REVOKE] = cut
        finally:
            victim.control_lock.release()
        scheduler.note_progress(victim_id, progress)
        lease = scheduler.record_steal(victim_id, thief_id, cut)
        if lease is None:  # pragma: no cover - guarded by the same cut test
            return False
        thief.dispatch(lease)
        return True

    for _ in range(min(workers, len(pending))):
        spawn_worker()

    try:
        while scheduler.outstanding():
            # 1. Pull freshly pushed records off every ring, then drain
            #    every finished/failed notification, so the deadline pass
            #    below never kills a worker that already reported.
            for handle in pool.values():
                drain_ring(handle)
            while True:
                try:
                    handle_message(result_queue.get_nowait())
                except queue_module.Empty:
                    break

            # 2. Progress + deadline + liveness pass: publish observed
            #    progress, replace overdue or dead workers.
            now = time.monotonic()
            for worker_id, handle in list(pool.items()):
                if handle.lease is None:
                    if not handle.process.is_alive():
                        # An idle worker that died takes no shard with it,
                        # but it must still be replaced or the pool shrinks.
                        drain_ring(handle, timeout=_LOCK_TIMEOUT)
                        handle.kill()
                        handle.destroy_ring()
                        scheduler.remove_worker(worker_id)
                        del pool[worker_id]
                        spawn_worker()
                    continue
                lease_id, progress, _revoke = handle.read_control()
                if lease_id == handle.lease.lease_id:
                    if progress > handle.seen_progress:
                        handle.seen_progress = progress
                        handle.last_activity = now
                        scheduler.note_progress(worker_id, progress)
                if (
                    timeout_seconds is not None
                    and now - handle.last_activity > timeout_seconds
                ):
                    replace_worker(
                        handle,
                        f"timeout: exceeded {timeout_seconds:.1f}s "
                        f"wall-clock budget",
                        timeout=True,
                    )
                elif not handle.process.is_alive():
                    replace_worker(
                        handle,
                        f"worker died (exit code {handle.process.exitcode})",
                        timeout=False,
                    )

            # 3. Feed idle workers: a fresh lease from the queue, else a
            #    steal from the most loaded peer.
            for worker_id, handle in list(pool.items()):
                if handle.lease is not None or not handle.process.is_alive():
                    continue
                lease = scheduler.lease(worker_id)
                if lease is not None:
                    handle.dispatch(lease)
                elif steal:
                    try_steal(worker_id, handle)

            # 4. Block briefly for the next event.
            try:
                handle_message(result_queue.get(timeout=_POLL_SECONDS))
            except queue_module.Empty:
                pass
    finally:
        for handle in pool.values():
            handle.shutdown()
            drain_ring(handle, timeout=_LOCK_TIMEOUT)
            handle.destroy_ring()
        result_queue.close()

    report.executed = sorted(done)
    report.leases = scheduler.leases_granted
    report.steals = scheduler.steals
    report.shards_stolen = scheduler.shards_stolen
