"""repro.fleet: the sharded multi-process population engine.

Scales the paper's two-machine, 46-participant evaluation to a million
independently seeded simulated machines and users::

    python -m repro fleet longterm  --machines 1000 --workers 8
    python -m repro fleet usability --users 10000 --workers 8 --resume spool/

Pieces:

- :mod:`repro.fleet.studies`   -- shardable study definitions + registry;
- :mod:`repro.fleet.engine`    -- the work-queue driver (worker pool,
  two-level leases with work stealing, per-shard timeout, bounded
  retries, poison-shard quarantine);
- :mod:`repro.fleet.scheduler` -- the pure lease/steal bookkeeping;
- :mod:`repro.fleet.reducers`  -- streaming reduction in shard-id order;
- :mod:`repro.fleet.records`   -- deterministic packed result records;
- :mod:`repro.fleet.shm_ring`  -- shared-memory rings for the merge path;
- :mod:`repro.fleet.spool`     -- atomic per-shard checkpoints for resume.
"""

from repro.fleet.engine import FleetReport, QuarantinedShard, run_fleet
from repro.fleet.errors import (
    FleetError,
    RecordFormatError,
    SpoolMismatchError,
    SpoolVersionError,
    UnknownStudyError,
)
from repro.fleet.records import PackedCounters, pack_record, unpack_record
from repro.fleet.reducers import OrderedFold, StreamingReducer
from repro.fleet.scheduler import Lease, StealScheduler, default_lease_size
from repro.fleet.shm_ring import DEFAULT_RING_BYTES, ShmRing
from repro.fleet.spool import SPOOL_VERSION, Spool
from repro.fleet.studies import (
    ShardSpec,
    StudyDefinition,
    get_study,
    register_study,
    study_names,
    unregister_study,
)

__all__ = [
    "DEFAULT_RING_BYTES",
    "FleetError",
    "FleetReport",
    "Lease",
    "OrderedFold",
    "PackedCounters",
    "QuarantinedShard",
    "RecordFormatError",
    "SPOOL_VERSION",
    "ShardSpec",
    "ShmRing",
    "Spool",
    "SpoolMismatchError",
    "SpoolVersionError",
    "StealScheduler",
    "StreamingReducer",
    "StudyDefinition",
    "UnknownStudyError",
    "default_lease_size",
    "get_study",
    "pack_record",
    "register_study",
    "run_fleet",
    "study_names",
    "unpack_record",
    "unregister_study",
]
