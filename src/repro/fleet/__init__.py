"""repro.fleet: the sharded multi-process population engine.

Scales the paper's two-machine, 46-participant evaluation to thousands of
independently seeded simulated machines and users::

    python -m repro fleet longterm  --machines 1000 --workers 8
    python -m repro fleet usability --users 10000 --workers 8 --resume spool/

Pieces:

- :mod:`repro.fleet.studies` -- shardable study definitions + registry;
- :mod:`repro.fleet.engine`  -- the work-queue driver (worker pool,
  per-shard timeout, bounded retries, poison-shard quarantine);
- :mod:`repro.fleet.spool`   -- atomic per-shard checkpoints for resume.
"""

from repro.fleet.engine import FleetReport, QuarantinedShard, run_fleet
from repro.fleet.errors import FleetError, SpoolMismatchError, UnknownStudyError
from repro.fleet.spool import Spool
from repro.fleet.studies import (
    ShardSpec,
    StudyDefinition,
    get_study,
    register_study,
    study_names,
    unregister_study,
)

__all__ = [
    "FleetError",
    "FleetReport",
    "QuarantinedShard",
    "ShardSpec",
    "Spool",
    "SpoolMismatchError",
    "StudyDefinition",
    "UnknownStudyError",
    "get_study",
    "register_study",
    "run_fleet",
    "study_names",
    "unregister_study",
]
