"""Multi-process tenant sharding: one front door, N decision cores.

A single :class:`ServiceDaemon` is ultimately bounded by one Python
process.  :class:`ShardedDaemon` scales the service across cores while
keeping every contract intact: a parent *router* process owns the public
listeners and hashes each tenant onto one of N *worker* processes, each an
ordinary :class:`ServiceDaemon` (own event loop, own
:class:`PermissionService`) listening on a private per-worker UNIX socket
and speaking the exact same frame protocol.

Why this preserves the determinism gates:

- **Per-tenant ordering.**  A tenant maps to exactly one worker
  (:func:`repro.service.snapshot.tenant_shard`, a cross-process-stable
  CRC32), the router forwards over one ordered stream per worker, and the
  worker dispatches per-connection FIFO -- so any one tenant's requests
  execute in arrival order, exactly as in-process.
- **Byte-identity.**  Workers run the same request engine, so response
  envelopes are byte-identical; the router rewrites only the correlation
  id (packed frames: 8 bytes in place at a fixed offset, no decode; JSON
  frames: decode, re-encode canonically), which restores the client's own
  id before forwarding back.

The router answers ``ping`` and ``hello`` itself (no tenant to hash) and
aggregates the no-tenant ``stats`` verb across workers.  Everything else
-- including structurally invalid requests, so error envelopes stay
byte-identical -- is forwarded to the tenant's worker (worker 0 when no
valid tenant is named).

Workers are spawned as fresh interpreter processes (``python -m
repro.service.shard --worker-index I ...``) rather than forked: the
router may be started from a thread (the benchmark rig does), where
forking an asyncio process is undefined behaviour.  On drain the router
stops the listeners, waits for the route table to empty, then SIGTERMs
the workers, whose own graceful drain writes the tenant snapshots for a
warm restart.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import shutil
import signal
import struct
import subprocess
import sys
import tempfile
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.counters import Counters
from repro.service.protocol import (
    DEFAULT_MAX_FRAME,
    HEADER_SIZE,
    LENGTH_MASK,
    PACKED_BIT,
    PK_INTERACT,
    PK_QUERY,
    PROTOCOL_VERSION,
    WIRE_VERSION,
    E_BAD_REQUEST,
    E_FRAME_TOO_LARGE,
    E_INTERNAL,
    E_RETRY_LATER,
    E_SHUTTING_DOWN,
    FrameError,
    decode_body,
    encode_frame,
    encode_packed_frame,
    error_response,
    ok_response,
    packed_request_id,
    packed_tenant,
    rewrite_packed_id,
)
from repro.service.snapshot import tenant_shard

_HEADER = struct.Struct("!I")

#: How long the router waits for a freshly spawned worker's socket.
_WORKER_START_TIMEOUT = 15.0


class _ClientConn:
    """Per-client-socket state on the router (mirrors daemon._Connection)."""

    __slots__ = ("writer", "pending", "closed")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.pending = 0
        self.closed = False


class _Worker:
    """One worker daemon: its process, socket path, and router-side pipe."""

    __slots__ = ("index", "socket_path", "process", "reader", "writer", "alive")

    def __init__(self, index: int, socket_path: str) -> None:
        self.index = index
        self.socket_path = socket_path
        self.process: Optional[subprocess.Popen] = None
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.alive = False


class ShardedDaemon:
    """Front-door router for N :class:`ServiceDaemon` worker processes."""

    def __init__(
        self,
        worker_count: int,
        unix_path: Optional[str] = None,
        tcp_host: Optional[str] = None,
        tcp_port: int = 0,
        snapshot_dir: Optional[str] = None,
        max_pending: int = 256,
        max_frame: int = DEFAULT_MAX_FRAME,
        write_high: int = 1 << 20,
        worker_max_pending: int = 1 << 16,
        worker_batch_limit: int = 512,
        counters: Optional[Counters] = None,
    ) -> None:
        if worker_count < 1:
            raise ValueError("worker_count must be >= 1")
        if unix_path is None and tcp_host is None:
            raise ValueError("router needs at least one listener (unix_path or tcp_host)")
        self.worker_count = worker_count
        self.unix_path = unix_path
        self.tcp_host = tcp_host
        self.tcp_port = tcp_port
        self.snapshot_dir = snapshot_dir
        self.max_pending = max_pending
        self.max_frame = max_frame
        self.write_high = write_high
        #: The router's connection to each worker carries *every* client's
        #: traffic for that shard, so the worker-side per-connection budget
        #: must dwarf the router's per-client budget -- the router is the
        #: one doing client-level backpressure.
        self.worker_max_pending = worker_max_pending
        self.worker_batch_limit = worker_batch_limit
        self.counters = counters if counters is not None else Counters()

        self._workers: List[_Worker] = []
        self._socket_dir: Optional[str] = None
        self._servers: List[asyncio.AbstractServer] = []
        self._connections: set = set()
        self._reader_tasks: List[asyncio.Task] = []
        #: wid -> (client conn | None, original id, reply future | None,
        #: worker index).  The router stamps its own monotonically increasing
        #: correlation id (wid) on every forwarded frame and restores the
        #: client's original id on the way back.
        self._routes: Dict[int, Tuple[Optional[_ClientConn], Any, Optional[asyncio.Future], int]] = {}
        self._next_wid = 0
        self._draining = False
        self._drain_task: Optional[asyncio.Task] = None
        self._stopped = asyncio.Event()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Spawn the workers, connect to them, bind the public listeners."""
        self._socket_dir = tempfile.mkdtemp(prefix="overhaul-shard-")
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        env["PYTHONPATH"] = (
            src_root + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src_root
        )
        for index in range(self.worker_count):
            worker = _Worker(index, os.path.join(self._socket_dir, f"worker-{index}.sock"))
            command = [
                sys.executable,
                # -c rather than -m: the router imported repro.service.shard
                # already, and runpy warns when re-executing a loaded module.
                "-c",
                "from repro.service.shard import worker_main; "
                "raise SystemExit(worker_main())",
                "--worker-index", str(index),
                "--worker-count", str(self.worker_count),
                "--unix", worker.socket_path,
                "--max-pending", str(self.worker_max_pending),
                "--batch-limit", str(self.worker_batch_limit),
            ]
            if self.snapshot_dir is not None:
                command += ["--snapshot-dir", self.snapshot_dir]
            worker.process = subprocess.Popen(command, env=env)
            self._workers.append(worker)
        try:
            for worker in self._workers:
                await self._connect_worker(worker)
        except Exception:
            await self._kill_workers()
            raise
        for worker in self._workers:
            self._reader_tasks.append(
                asyncio.create_task(self._worker_read_loop(worker))
            )
        if self.unix_path is not None:
            server = await asyncio.start_unix_server(self._on_connect, path=self.unix_path)
            self._servers.append(server)
        if self.tcp_host is not None:
            server = await asyncio.start_server(
                self._on_connect, host=self.tcp_host, port=self.tcp_port
            )
            self.tcp_port = server.sockets[0].getsockname()[1]
            self._servers.append(server)

    async def _connect_worker(self, worker: _Worker) -> None:
        """Wait for the worker's socket to come up, then open one pipe to it."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + _WORKER_START_TIMEOUT
        while True:
            assert worker.process is not None
            if worker.process.poll() is not None:
                raise RuntimeError(
                    f"shard worker {worker.index} exited during startup "
                    f"(code {worker.process.returncode})"
                )
            try:
                worker.reader, worker.writer = await asyncio.open_unix_connection(
                    worker.socket_path
                )
                worker.alive = True
                return
            except (FileNotFoundError, ConnectionRefusedError, OSError):
                if loop.time() > deadline:
                    raise RuntimeError(
                        f"shard worker {worker.index} did not come up within "
                        f"{_WORKER_START_TIMEOUT}s"
                    )
                await asyncio.sleep(0.02)

    def begin_drain(self) -> None:
        """Stop accepting; finish in-flight; then drain + snapshot workers."""
        if self._draining:
            return
        self._draining = True
        for server in self._servers:
            server.close()
        self._drain_task = asyncio.create_task(self._finish_drain())

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    async def run_until_signalled(self) -> None:
        """Serve until SIGTERM/SIGINT, then drain gracefully and return."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.begin_drain)
            except NotImplementedError:  # pragma: no cover - non-POSIX loops
                pass
        try:
            await self.wait_stopped()
        finally:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.remove_signal_handler(signum)
                except NotImplementedError:  # pragma: no cover
                    pass

    async def _finish_drain(self) -> None:
        for server in self._servers:
            try:
                await server.wait_closed()
            except Exception:  # pragma: no cover
                pass
        # Every response the workers still owe us empties the route table;
        # only then is it safe to tell them to drain (their queues are empty
        # of our traffic, so their snapshots are complete).
        while self._routes:
            await asyncio.sleep(0.005)
        for worker in self._workers:
            if worker.process is not None and worker.process.poll() is None:
                worker.process.send_signal(signal.SIGTERM)
        loop = asyncio.get_running_loop()
        for worker in self._workers:
            if worker.process is not None:
                try:
                    await asyncio.wait_for(
                        loop.run_in_executor(None, worker.process.wait), timeout=30.0
                    )
                except asyncio.TimeoutError:  # pragma: no cover - hung worker
                    worker.process.kill()
        for task in self._reader_tasks:
            task.cancel()
        for worker in self._workers:
            if worker.writer is not None:
                try:
                    worker.writer.close()
                except Exception:  # pragma: no cover
                    pass
        for conn in list(self._connections):
            conn.closed = True
            try:
                if conn.writer.transport is not None and not conn.writer.transport.is_closing():
                    await conn.writer.drain()
                conn.writer.close()
            except Exception:
                pass
        self._connections.clear()
        if self._socket_dir is not None:
            shutil.rmtree(self._socket_dir, ignore_errors=True)
        self._stopped.set()

    async def _kill_workers(self) -> None:
        for worker in self._workers:
            if worker.process is not None and worker.process.poll() is None:
                worker.process.kill()
                worker.process.wait()
        if self._socket_dir is not None:
            shutil.rmtree(self._socket_dir, ignore_errors=True)

    # -- client side -----------------------------------------------------------

    async def _on_connect(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _ClientConn(writer)
        self._connections.add(conn)
        self.counters.inc("shard.connections")
        try:
            await self._client_read_loop(reader, conn)
        except (asyncio.IncompleteReadError, ConnectionResetError, BrokenPipeError):
            pass
        finally:
            conn.closed = True
            self._connections.discard(conn)
            try:
                writer.close()
            except Exception:  # pragma: no cover
                pass

    async def _client_read_loop(
        self, reader: asyncio.StreamReader, conn: _ClientConn
    ) -> None:
        while True:
            header = await reader.readexactly(HEADER_SIZE)
            (raw,) = _HEADER.unpack(header)
            packed = bool(raw & PACKED_BIT)
            length = raw & LENGTH_MASK
            if length > self.max_frame:
                self.counters.inc("shard.frames_rejected")
                self._send_env(conn, error_response(
                    None,
                    E_FRAME_TOO_LARGE,
                    f"frame of {length} bytes exceeds the {self.max_frame}-byte bound",
                ))
                return
            body = await reader.readexactly(length)
            if packed:
                await self._route_packed(conn, body)
            else:
                await self._route_json(conn, body)

    async def _route_packed(self, conn: _ClientConn, body: bytes) -> None:
        """The hot path: route by peeking, rewrite the id in place, forward.

        Never decodes the frame -- tag, id, and tenant live at fixed
        offsets precisely so the router stays O(tenant-length) per frame.
        """
        try:
            if body[0] not in (PK_QUERY, PK_INTERACT):
                raise FrameError(
                    E_BAD_REQUEST, f"packed tag {body[0]:#x} is not a request"
                )
            tenant = packed_tenant(body)
            orig_id = packed_request_id(body)
        except (FrameError, IndexError, struct.error) as error:
            self.counters.inc("shard.frames_rejected")
            self._send_env(conn, error_response(
                None, E_BAD_REQUEST, f"malformed packed frame: {error}"
            ))
            conn.closed = True
            conn.writer.close()
            return
        if self._draining:
            self.counters.inc("shard.refused_draining")
            self._send_env(conn, error_response(orig_id, E_SHUTTING_DOWN, "daemon is draining"))
            return
        if conn.pending >= self.max_pending:
            self.counters.inc("shard.retry_later")
            self._send_env(conn, error_response(
                orig_id,
                E_RETRY_LATER,
                f"connection has {conn.pending} requests in flight "
                f"(budget {self.max_pending}); retry later",
            ))
            return
        worker = self._workers[tenant_shard(tenant, self.worker_count)]
        if not worker.alive:
            self._send_env(conn, error_response(
                orig_id, E_INTERNAL, f"shard worker {worker.index} is down"
            ))
            return
        self._next_wid += 1
        wid = self._next_wid
        self._routes[wid] = (conn, orig_id, None, worker.index)
        conn.pending += 1
        buffer = bytearray(body)
        rewrite_packed_id(buffer, wid)
        assert worker.writer is not None
        worker.writer.write(encode_packed_frame(bytes(buffer)))
        self.counters.inc("shard.routed_packed")

    async def _route_json(self, conn: _ClientConn, body: bytes) -> None:
        try:
            request = decode_body(body)
        except FrameError as error:
            self.counters.inc("shard.frames_rejected")
            self._send_env(conn, error_response(None, error.code, str(error)))
            conn.closed = True
            conn.writer.close()
            return
        request_id = request.get("id")
        if self._draining:
            self.counters.inc("shard.refused_draining")
            self._send_env(conn, error_response(request_id, E_SHUTTING_DOWN, "daemon is draining"))
            return
        op = request.get("op")
        if op == "hello":
            offered = request.get("encodings")
            takes_packed = isinstance(offered, list) and "packed" in offered
            self._send_env(conn, ok_response(request_id, {
                "encoding": "packed" if takes_packed else "json",
                "wire_version": WIRE_VERSION if takes_packed else 1,
                "version": PROTOCOL_VERSION,
            }))
            return
        if op == "ping" and request.get("v") == PROTOCOL_VERSION:
            # Tenant-less; answered here, byte-identical to a worker's answer.
            self._send_env(conn, ok_response(
                request_id, {"pong": True, "version": PROTOCOL_VERSION}
            ))
            return
        if (
            op == "stats"
            and request.get("v") == PROTOCOL_VERSION
            and request.get("tenant") is None
        ):
            await self._global_stats(conn, request_id)
            return
        if conn.pending >= self.max_pending:
            self.counters.inc("shard.retry_later")
            self._send_env(conn, error_response(
                request_id,
                E_RETRY_LATER,
                f"connection has {conn.pending} requests in flight "
                f"(budget {self.max_pending}); retry later",
            ))
            return
        # Route by tenant hash; anything without a usable tenant (including
        # structurally invalid requests) goes to worker 0, whose request
        # engine produces the byte-identical error envelope.
        tenant = request.get("tenant")
        index = tenant_shard(tenant, self.worker_count) if isinstance(tenant, str) else 0
        worker = self._workers[index]
        if not worker.alive:
            self._send_env(conn, error_response(
                request_id, E_INTERNAL, f"shard worker {worker.index} is down"
            ))
            return
        self._next_wid += 1
        wid = self._next_wid
        self._routes[wid] = (conn, request_id, None, worker.index)
        conn.pending += 1
        request["id"] = wid
        assert worker.writer is not None
        worker.writer.write(encode_frame(request))
        self.counters.inc("shard.routed")

    async def _global_stats(self, conn: _ClientConn, request_id: Any) -> None:
        """The no-tenant ``stats`` verb: one view over every worker.

        Tenant lists union; counters sum key-wise across workers, with the
        router's own ``shard.*`` counters overlaid (their names never
        collide with the workers' ``service.*`` names).
        """
        loop = asyncio.get_running_loop()
        futures: List[Tuple[_Worker, asyncio.Future]] = []
        for worker in self._workers:
            if not worker.alive:
                continue
            self._next_wid += 1
            wid = self._next_wid
            future = loop.create_future()
            self._routes[wid] = (None, None, future, worker.index)
            assert worker.writer is not None
            worker.writer.write(encode_frame(
                {"v": PROTOCOL_VERSION, "id": wid, "op": "stats"}
            ))
            futures.append((worker, future))
        tenants: set = set()
        combined: Dict[str, int] = dict(self.counters.snapshot())
        for worker, future in futures:
            try:
                response = await asyncio.wait_for(future, timeout=10.0)
            except (asyncio.TimeoutError, ConnectionError):  # pragma: no cover
                continue
            result = response.get("result") if response.get("ok") else None
            if not isinstance(result, dict):  # pragma: no cover - defensive
                continue
            tenants.update(result.get("tenants", []))
            for key, value in result.get("counters", {}).items():
                combined[key] = combined.get(key, 0) + value
        self._send_env(conn, ok_response(request_id, {
            "tenants": sorted(tenants),
            "counters": combined,
            "workers": self.worker_count,
        }))

    # -- worker side -----------------------------------------------------------

    async def _worker_read_loop(self, worker: _Worker) -> None:
        assert worker.reader is not None
        try:
            while True:
                header = await worker.reader.readexactly(HEADER_SIZE)
                (raw,) = _HEADER.unpack(header)
                packed = bool(raw & PACKED_BIT)
                body = await worker.reader.readexactly(raw & LENGTH_MASK)
                if packed:
                    wid = packed_request_id(body)
                    route = self._routes.pop(wid, None)
                    if route is None:  # pragma: no cover - defensive
                        continue
                    conn, orig_id, future, _ = route
                    if future is not None:  # pragma: no cover - stats is JSON
                        if not future.done():
                            future.set_result(None)
                        continue
                    assert conn is not None
                    conn.pending -= 1
                    buffer = bytearray(body)
                    rewrite_packed_id(buffer, orig_id)
                    self._send_raw(conn, encode_packed_frame(bytes(buffer)))
                else:
                    response = decode_body(body)
                    wid = response.get("id")
                    route = self._routes.pop(wid, None) if isinstance(wid, int) else None
                    if route is None:  # pragma: no cover - defensive
                        continue
                    conn, orig_id, future, _ = route
                    if future is not None:
                        if not future.done():
                            future.set_result(response)
                        continue
                    assert conn is not None
                    conn.pending -= 1
                    response["id"] = orig_id
                    self._send_raw(conn, encode_frame(response))
        except asyncio.CancelledError:
            raise
        except (asyncio.IncompleteReadError, ConnectionResetError, BrokenPipeError, OSError):
            self._on_worker_death(worker)
        except FrameError:  # pragma: no cover - worker speaking garbage
            self._on_worker_death(worker)

    def _on_worker_death(self, worker: _Worker) -> None:
        """Fail every in-flight request owed by a dead worker, loudly."""
        if self._draining:
            # Expected during shutdown: workers close their sockets as they
            # finish draining (and the route table is empty by then).
            worker.alive = False
            return
        worker.alive = False
        self.counters.inc("shard.worker_deaths")
        owed = [wid for wid, route in self._routes.items() if route[3] == worker.index]
        for wid in owed:
            conn, orig_id, future, _ = self._routes.pop(wid)
            message = f"shard worker {worker.index} died mid-request"
            if future is not None:
                if not future.done():
                    future.set_exception(ConnectionError(message))
                continue
            assert conn is not None
            conn.pending -= 1
            self._send_env(conn, error_response(orig_id, E_INTERNAL, message))

    # -- writes ----------------------------------------------------------------

    def _send_env(self, conn: _ClientConn, response: Dict[str, Any]) -> None:
        self._send_raw(conn, encode_frame(response))

    def _send_raw(self, conn: _ClientConn, data: bytes) -> None:
        if conn.closed:
            self.counters.inc("shard.responses_dropped")
            return
        writer = conn.writer
        transport = writer.transport
        if transport is None or transport.is_closing():
            self.counters.inc("shard.responses_dropped")
            return
        writer.write(data)
        if transport.get_write_buffer_size() > self.write_high:
            self.counters.inc("shard.slow_client_drops")
            conn.closed = True
            writer.close()

    # -- introspection ---------------------------------------------------------

    @property
    def connection_count(self) -> int:
        return len(self._connections)

    @property
    def routes_in_flight(self) -> int:
        return len(self._routes)

    @property
    def draining(self) -> bool:
        return self._draining


# -- worker entry point --------------------------------------------------------


def worker_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.service.shard``: run one shard worker daemon."""
    parser = argparse.ArgumentParser(
        prog="repro.service.shard",
        description="Overhaul shard worker (spawned by ShardedDaemon)",
    )
    parser.add_argument("--worker-index", type=int, required=True)
    parser.add_argument("--worker-count", type=int, required=True)
    parser.add_argument("--unix", required=True, help="private worker socket path")
    parser.add_argument("--max-pending", type=int, default=1 << 16)
    parser.add_argument("--batch-limit", type=int, default=512)
    parser.add_argument("--snapshot-dir", default=None)
    args = parser.parse_args(argv)

    from repro.service.core import PermissionService
    from repro.service.daemon import ServiceDaemon

    service = PermissionService(journal=args.snapshot_dir is not None)
    daemon = ServiceDaemon(
        service,
        unix_path=args.unix,
        max_pending=args.max_pending,
        batch_limit=args.batch_limit,
        snapshot_dir=args.snapshot_dir,
        shard_index=args.worker_index,
        shard_count=args.worker_count,
    )

    async def main() -> None:
        await daemon.start()
        await daemon.run_until_signalled()

    asyncio.run(main())
    return 0


if __name__ == "__main__":
    sys.exit(worker_main())
