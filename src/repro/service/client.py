"""Client libraries for the Overhaul permission daemon.

Two flavours:

- :class:`ServiceClient` -- blocking, one outstanding request at a time.
  The shape application code wants: ``client.query("t0", pid, "paste")``.
  Transparently retries ``RETRY_LATER`` backpressure responses with a
  capped exponential backoff (configurable, and disable-able for tests
  that assert on the raw error).
- :class:`AsyncServiceClient` -- asyncio, pipelined: many requests may be
  in flight per connection, matched to responses by the envelope ``id``.
  The benchmark and load-generation shape.

Both speak the :mod:`repro.service.protocol` framing and raise
:class:`ServiceError` (carrying the protocol error code) for error
envelopes.
"""

from __future__ import annotations

import asyncio
import socket
import time
from typing import Any, Dict, Optional, Tuple

from repro.service.protocol import (
    DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
    E_RETRY_LATER,
    FrameDecoder,
    FrameError,
    encode_request_frame,
)


class ServiceError(Exception):
    """An error envelope from the daemon, with its protocol code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


def _result_or_raise(response: Dict[str, Any]) -> Dict[str, Any]:
    if response.get("ok"):
        return response["result"]
    raise ServiceError(
        str(response.get("error", "INTERNAL")), str(response.get("message", ""))
    )


class _Verbs:
    """The convenience verb surface shared by both clients' sync wrappers."""

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:  # pragma: no cover
        raise NotImplementedError

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def spawn(self, tenant: str, name: str) -> Dict[str, Any]:
        return self.request("spawn", tenant=tenant, name=name)

    def interact(self, tenant: str, pid: int, at: Optional[int] = None) -> Dict[str, Any]:
        return self.request("interact", tenant=tenant, pid=pid, at=at)

    def query(
        self, tenant: str, pid: int, operation: str, at: Optional[int] = None
    ) -> Dict[str, Any]:
        return self.request("query", tenant=tenant, pid=pid, operation=operation, at=at)

    def advance(self, tenant: str, dt: int) -> Dict[str, Any]:
        return self.request("advance", tenant=tenant, dt=dt)

    def digest(self, tenant: str) -> Dict[str, Any]:
        return self.request("digest", tenant=tenant)

    def stats(self, tenant: Optional[str] = None) -> Dict[str, Any]:
        return self.request("stats", tenant=tenant)

    def reset(self, tenant: str) -> Dict[str, Any]:
        return self.request("reset", tenant=tenant)


class ServiceClient(_Verbs):
    """Blocking client over a UNIX or TCP socket."""

    def __init__(
        self,
        unix_path: Optional[str] = None,
        tcp: Optional[Tuple[str, int]] = None,
        timeout: float = 30.0,
        retry_attempts: int = 8,
        retry_delay: float = 0.005,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> None:
        if (unix_path is None) == (tcp is None):
            raise ValueError("pass exactly one of unix_path or tcp=(host, port)")
        if unix_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(unix_path)
        else:
            sock = socket.create_connection(tcp, timeout=timeout)
        self._sock = sock
        self._decoder = FrameDecoder(max_frame=max_frame)
        self._next_id = 0
        self._packed = False
        self.retry_attempts = retry_attempts
        self.retry_delay = retry_delay

    # -- plumbing ------------------------------------------------------------

    def negotiate(self) -> bool:
        """Offer the packed (wire v2) encoding; True when the daemon takes it.

        A v1-only daemon answers ``hello`` with ``BAD_REQUEST``; the client
        simply stays on JSON, so negotiation is safe against any server.
        """
        response = self.request_raw("hello", encodings=["packed"])
        self._packed = bool(
            response.get("ok") and response["result"].get("encoding") == "packed"
        )
        return self._packed

    def request_raw(self, op: str, **fields: Any) -> Dict[str, Any]:
        """One request/response round trip; returns the raw envelope."""
        self._next_id += 1
        request: Dict[str, Any] = {"v": PROTOCOL_VERSION, "id": self._next_id, "op": op}
        for key, value in fields.items():
            if value is not None:
                request[key] = value
        self._sock.sendall(encode_request_frame(request, self._packed))
        while True:
            data = self._sock.recv(65536)
            if not data:
                # An empty recv is EOF no matter how much of a frame is
                # already buffered: the daemon is gone and the missing
                # bytes are never coming.  Spinning on recv here was the
                # classic busy-hang -- EOF must raise unconditionally.
                if self._decoder.pending_bytes:
                    raise ConnectionError(
                        "daemon closed the connection mid-frame "
                        f"({self._decoder.pending_bytes} bytes short)"
                    )
                raise ConnectionError("daemon closed the connection")
            frames = self._decoder.feed(data)
            if frames:
                return frames[0]

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Round trip with RETRY_LATER backoff; returns the result dict."""
        delay = self.retry_delay
        for attempt in range(self.retry_attempts + 1):
            response = self.request_raw(op, **fields)
            if response.get("ok") or response.get("error") != E_RETRY_LATER:
                return _result_or_raise(response)
            if attempt == self.retry_attempts:
                return _result_or_raise(response)
            time.sleep(delay)
            delay = min(delay * 2, 0.25)
        raise AssertionError("unreachable")  # pragma: no cover

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class AsyncServiceClient(_Verbs):
    """Pipelined asyncio client: many requests in flight per connection.

    Build with :meth:`connect`; every :meth:`request` is a coroutine.  A
    background reader task resolves response futures by envelope ``id``.
    The inherited verb helpers return coroutines here (``await
    client.query(...)``).
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader_stream = reader
        self._writer = writer
        self._next_id = 0
        self._pending: Dict[int, asyncio.Future] = {}
        self._reader_task = asyncio.create_task(self._read_loop())
        self._closed = False
        self._packed = False
        #: Set once the connection is unusable; every later request fails
        #: fast with this message instead of parking a future forever.
        self._conn_error: Optional[str] = None

    @classmethod
    async def connect(
        cls,
        unix_path: Optional[str] = None,
        tcp: Optional[Tuple[str, int]] = None,
        packed: bool = False,
    ) -> "AsyncServiceClient":
        if (unix_path is None) == (tcp is None):
            raise ValueError("pass exactly one of unix_path or tcp=(host, port)")
        if unix_path is not None:
            reader, writer = await asyncio.open_unix_connection(unix_path)
        else:
            reader, writer = await asyncio.open_connection(tcp[0], tcp[1])
        client = cls(reader, writer)
        if packed:
            await client.negotiate()
        return client

    async def _read_loop(self) -> None:
        from repro.service.protocol import (
            HEADER_SIZE,
            LENGTH_MASK,
            PACKED_BIT,
            decode_body,
            unpack_body,
        )
        import struct

        header_struct = struct.Struct("!I")
        # Any exit from this loop strands every in-flight and future
        # request, so every exit path -- EOF, reset, cancellation, and
        # crucially a malformed frame (FrameError) or stray OSError, which
        # used to kill the task *silently* and hang all callers forever --
        # must record why and fail the pending futures.
        error = "daemon connection lost"
        try:
            while True:
                header = await self._reader_stream.readexactly(HEADER_SIZE)
                (raw,) = header_struct.unpack(header)
                body = await self._reader_stream.readexactly(raw & LENGTH_MASK)
                response = unpack_body(body) if raw & PACKED_BIT else decode_body(body)
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except asyncio.CancelledError:
            error = "client is closed"
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass
        except FrameError as exc:
            error = f"daemon sent an undecodable frame: {exc}"
        except (BrokenPipeError, OSError) as exc:
            error = f"daemon connection lost: {exc}"
        self._conn_error = error
        for future in self._pending.values():
            if not future.done():
                future.set_exception(ConnectionError(error))
        self._pending.clear()

    async def negotiate(self) -> bool:
        """Offer the packed (wire v2) encoding; True when the daemon takes it."""
        response = await self.request_raw("hello", encodings=["packed"])
        self._packed = bool(
            response.get("ok") and response["result"].get("encoding") == "packed"
        )
        return self._packed

    async def request_raw(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request; await its raw response envelope (pipelined)."""
        if self._closed:
            raise ConnectionError("client is closed")
        if self._conn_error is not None:
            raise ConnectionError(self._conn_error)
        self._next_id += 1
        request_id = self._next_id
        request: Dict[str, Any] = {"v": PROTOCOL_VERSION, "id": request_id, "op": op}
        for key, value in fields.items():
            if value is not None:
                request[key] = value
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(encode_request_frame(request, self._packed))
        return await future

    async def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request; await its result (no automatic retries)."""
        return _result_or_raise(await self.request_raw(op, **fields))

    async def drain(self) -> None:
        """Flush the socket's write buffer (call between pipelined bursts)."""
        await self._writer.drain()

    async def close(self) -> None:
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):  # pragma: no cover
            pass
