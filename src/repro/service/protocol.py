"""The Overhaul service wire protocol.

Framing
-------

Every message -- request or response, either direction -- is one *frame*:

    +----------------+----------------------------------+
    | 4 bytes, ``!I``| UTF-8 JSON object (*length* bytes)|
    +----------------+----------------------------------+

The length prefix counts the body only.  Frames above the receiver's
``max_frame`` bound are rejected with :data:`E_FRAME_TOO_LARGE` and the
connection is closed -- a length prefix is a promise the receiver must be
able to refuse *before* buffering the body, or a single client could make
the daemon allocate arbitrarily.

Wire v2: packed frames
----------------------

The top bit of the length prefix selects the body encoding: clear means
UTF-8 JSON (wire v1, always accepted), set means a *packed* struct body
(wire v2) for the hot verbs -- ``query`` and ``interact`` requests and
their success responses.  A packed body decodes to exactly the dict its
JSON twin would have produced, so everything above the framing layer
(the request engine, the determinism transcripts) is encoding-blind.

Packed layouts (network byte order) put the correlation id at a fixed
offset and the tenant immediately after it, so a shard router can route
and re-correlate by peeking a handful of bytes without decoding::

    PK_QUERY        tag:B  id:q  tlen:B tenant  pid:I  at?:Bq  olen:H op
    PK_INTERACT     tag:B  id:q  tlen:B tenant  pid:I  at?:Bq
    PK_QUERY_OK     tag:B  id:q  granted:B age?:Bq time:q  rlen:H reason
    PK_INTERACT_OK  tag:B  id:q  time:q

``at?``/``age?`` are a presence flag byte followed by the value (zero
when absent -- ``at`` omitted from the decoded request, ``null`` age in
the decoded response).  Packed correlation ids must be signed 64-bit
integers; anything unpackable (huge strings, non-int ids) silently falls
back to JSON, which every peer accepts per-frame.

Negotiation: a client opens with a JSON ``hello`` request offering
``{"encodings": ["packed"]}``; the daemon answers with the encoding it
accepts.  A v1-only daemon answers ``hello`` with ``BAD_REQUEST``, which
a v2 client treats as "stay on JSON".  There is no per-connection mode
switch to get out of sync over: every peer answers a frame in the
encoding the frame arrived in.

Envelopes
---------

Requests are JSON objects::

    {"v": 1, "id": 7, "op": "query", "tenant": "t0",
     "pid": 12, "operation": "paste"}

``v`` is the protocol version (mismatches are answered with
:data:`E_UNSUPPORTED_VERSION`, never guessed at); ``id`` is an opaque
client-chosen correlation value echoed verbatim in the response, which is
what makes response pipelining possible; ``op`` selects the verb.

Responses are either::

    {"v": 1, "id": 7, "ok": true, "result": {...}}
    {"v": 1, "id": 7, "ok": false, "error": "RETRY_LATER", "message": "..."}

Responses are encoded *canonically* (sorted keys, minimal separators), so
two transcripts of the same logical session are byte-identical -- the
property the determinism gates ``cmp``.

Error codes
-----------

- ``BAD_REQUEST``          -- unparseable or structurally invalid request;
- ``UNSUPPORTED_VERSION``  -- the ``v`` field is not this protocol version;
- ``RETRY_LATER``          -- backpressure: the connection's pending-request
  budget is exhausted; the client should back off and resend;
- ``SHUTTING_DOWN``        -- the daemon is draining; in-flight requests
  still complete, new ones are refused;
- ``FRAME_TOO_LARGE``      -- the announced frame exceeds the bound (the
  connection is closed after this response);
- ``TENANT_LIMIT``         -- the tenant partition table is full;
- ``INTERNAL``             -- unexpected server-side failure.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List, Optional

#: Version of the request/response envelope.  Bump on breaking changes;
#: the daemon answers old versions with E_UNSUPPORTED_VERSION rather than
#: misinterpreting them.
PROTOCOL_VERSION = 1

#: Version of the *wire encoding* a peer may negotiate (the ``hello``
#: handshake).  v2 adds packed struct frames for the hot verbs; the
#: envelope schema -- and therefore every decoded dict -- is unchanged.
WIRE_VERSION = 2

#: Default upper bound on a frame body, in bytes.  Service requests are
#: small (a query is < 200 bytes); anything near this bound is hostile or
#: broken.
DEFAULT_MAX_FRAME = 64 * 1024

_HEADER = struct.Struct("!I")
HEADER_SIZE = _HEADER.size

#: Top bit of the length prefix: set means the body is a packed (wire v2)
#: struct, clear means UTF-8 JSON.  The remaining 31 bits are the length.
PACKED_BIT = 0x80000000
LENGTH_MASK = 0x7FFFFFFF

E_BAD_REQUEST = "BAD_REQUEST"
E_UNSUPPORTED_VERSION = "UNSUPPORTED_VERSION"
E_RETRY_LATER = "RETRY_LATER"
E_SHUTTING_DOWN = "SHUTTING_DOWN"
E_FRAME_TOO_LARGE = "FRAME_TOO_LARGE"
E_TENANT_LIMIT = "TENANT_LIMIT"
E_INTERNAL = "INTERNAL"


class FrameError(Exception):
    """A violation of the framing layer (oversized or malformed frame)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def canonical_json(obj: Any) -> str:
    """The one serialisation the determinism gates compare byte-for-byte."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def encode_frame(obj: Dict[str, Any]) -> bytes:
    """Serialise one envelope into a length-prefixed frame."""
    body = canonical_json(obj).encode("utf-8")
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> Dict[str, Any]:
    """Parse a frame body; raise :class:`FrameError` on garbage."""
    try:
        obj = json.loads(body)
    except (ValueError, UnicodeDecodeError) as error:
        raise FrameError(E_BAD_REQUEST, f"frame body is not valid JSON: {error}")
    if not isinstance(obj, dict):
        raise FrameError(E_BAD_REQUEST, "frame body must be a JSON object")
    return obj


# -- packed (wire v2) bodies --------------------------------------------------

PK_QUERY = 0x01
PK_INTERACT = 0x02
PK_QUERY_OK = 0x81
PK_INTERACT_OK = 0x82

_PK_HEAD = struct.Struct("!Bq")      # tag, correlation id
_PK_ID = struct.Struct("!q")
_PK_PID_AT = struct.Struct("!IBq")   # pid, at-flag, at
_PK_U16 = struct.Struct("!H")
_PK_QUERY_OK_FIX = struct.Struct("!BBqq")  # granted, age-flag, age, time
_PK_TIME = struct.Struct("!q")

#: Byte offset of the ``!q`` correlation id in *every* packed body -- the
#: shard router rewrites ids in place at this offset instead of decoding.
PACKED_ID_OFFSET = 1
#: Byte offset of the tenant length prefix in packed *request* bodies.
PACKED_TENANT_OFFSET = _PK_HEAD.size


def encode_packed_frame(body: bytes) -> bytes:
    """Wrap an already-packed body in a length-prefixed v2 frame."""
    return _HEADER.pack(len(body) | PACKED_BIT) + body


def pack_query(
    request_id: int, tenant: str, pid: int, operation: str, at: Optional[int] = None
) -> bytes:
    t = tenant.encode("utf-8")
    o = operation.encode("utf-8")
    return b"".join(
        (
            _PK_HEAD.pack(PK_QUERY, request_id),
            bytes((len(t),)),
            t,
            _PK_PID_AT.pack(pid, 0 if at is None else 1, at if at is not None else 0),
            _PK_U16.pack(len(o)),
            o,
        )
    )


def pack_interact(
    request_id: int, tenant: str, pid: int, at: Optional[int] = None
) -> bytes:
    t = tenant.encode("utf-8")
    return b"".join(
        (
            _PK_HEAD.pack(PK_INTERACT, request_id),
            bytes((len(t),)),
            t,
            _PK_PID_AT.pack(pid, 0 if at is None else 1, at if at is not None else 0),
        )
    )


def pack_query_ok(
    request_id: int,
    granted: bool,
    reason: str,
    interaction_age: Optional[int],
    time: int,
) -> bytes:
    r = reason.encode("utf-8")
    return b"".join(
        (
            _PK_HEAD.pack(PK_QUERY_OK, request_id),
            _PK_QUERY_OK_FIX.pack(
                1 if granted else 0,
                0 if interaction_age is None else 1,
                interaction_age if interaction_age is not None else 0,
                time,
            ),
            _PK_U16.pack(len(r)),
            r,
        )
    )


def pack_interact_ok(request_id: int, time: int) -> bytes:
    return _PK_HEAD.pack(PK_INTERACT_OK, request_id) + _PK_TIME.pack(time)


def packed_request_id(body: bytes) -> int:
    """Peek the correlation id of a packed body without decoding it."""
    return _PK_ID.unpack_from(body, PACKED_ID_OFFSET)[0]


def packed_tenant(body: bytes) -> str:
    """Peek the tenant of a packed *request* body without decoding it."""
    tag = body[0]
    if tag not in (PK_QUERY, PK_INTERACT):
        raise FrameError(E_BAD_REQUEST, f"packed tag {tag:#x} carries no tenant")
    length = body[PACKED_TENANT_OFFSET]
    start = PACKED_TENANT_OFFSET + 1
    if len(body) < start + length:
        raise FrameError(E_BAD_REQUEST, "packed body truncated inside tenant")
    return body[start : start + length].decode("utf-8")


def rewrite_packed_id(body: bytearray, request_id: int) -> None:
    """Overwrite a packed body's correlation id in place (shard routing)."""
    _PK_ID.pack_into(body, PACKED_ID_OFFSET, request_id)


def unpack_body(body: bytes) -> Dict[str, Any]:
    """Decode a packed body into the exact dict its JSON twin would carry."""
    try:
        tag, request_id = _PK_HEAD.unpack_from(body, 0)
        pos = _PK_HEAD.size
        if tag == PK_QUERY or tag == PK_INTERACT:
            tlen = body[pos]
            pos += 1
            tenant = bytes(body[pos : pos + tlen]).decode("utf-8")
            if tlen != len(tenant.encode("utf-8")):
                raise FrameError(E_BAD_REQUEST, "packed body truncated inside tenant")
            pos += tlen
            pid, at_flag, at = _PK_PID_AT.unpack_from(body, pos)
            pos += _PK_PID_AT.size
            request: Dict[str, Any] = {
                "v": PROTOCOL_VERSION,
                "id": request_id,
                "op": "query" if tag == PK_QUERY else "interact",
                "tenant": tenant,
                "pid": pid,
            }
            if tag == PK_QUERY:
                (olen,) = _PK_U16.unpack_from(body, pos)
                pos += _PK_U16.size
                operation = bytes(body[pos : pos + olen]).decode("utf-8")
                pos += olen
                request["operation"] = operation
            if at_flag:
                request["at"] = at
            if pos != len(body):
                raise FrameError(E_BAD_REQUEST, "packed body has trailing bytes")
            return request
        if tag == PK_QUERY_OK:
            granted, age_flag, age, time = _PK_QUERY_OK_FIX.unpack_from(body, pos)
            pos += _PK_QUERY_OK_FIX.size
            (rlen,) = _PK_U16.unpack_from(body, pos)
            pos += _PK_U16.size
            reason = bytes(body[pos : pos + rlen]).decode("utf-8")
            pos += rlen
            if pos != len(body):
                raise FrameError(E_BAD_REQUEST, "packed body has trailing bytes")
            return {
                "v": PROTOCOL_VERSION,
                "id": request_id,
                "ok": True,
                "result": {
                    "granted": bool(granted),
                    "reason": reason,
                    "interaction_age": age if age_flag else None,
                    "time": time,
                },
            }
        if tag == PK_INTERACT_OK:
            (time,) = _PK_TIME.unpack_from(body, pos)
            pos += _PK_TIME.size
            if pos != len(body):
                raise FrameError(E_BAD_REQUEST, "packed body has trailing bytes")
            return {
                "v": PROTOCOL_VERSION,
                "id": request_id,
                "ok": True,
                "result": {"time": time},
            }
    except FrameError:
        raise
    except (struct.error, IndexError, UnicodeDecodeError) as error:
        raise FrameError(E_BAD_REQUEST, f"malformed packed body: {error}")
    raise FrameError(E_BAD_REQUEST, f"unknown packed frame tag {body[0]:#x}")


_PACKED_ID_RANGE = (-(2**63), 2**63 - 1)


def encode_request_frame(request: Dict[str, Any], packed: bool = False) -> bytes:
    """Encode a request, packing the hot verbs when *packed* is true.

    Anything the packed layouts cannot carry -- non-int correlation ids,
    oversized strings, wrong field types (the daemon must see those and
    answer ``BAD_REQUEST`` itself) -- falls back to a JSON frame, which
    every peer accepts regardless of negotiation.
    """
    if packed:
        request_id = request.get("id")
        if isinstance(request_id, int) and not isinstance(request_id, bool) and (
            _PACKED_ID_RANGE[0] <= request_id <= _PACKED_ID_RANGE[1]
        ):
            op = request.get("op")
            try:
                if op == "query" and set(request) <= {
                    "v", "id", "op", "tenant", "pid", "operation", "at",
                }:
                    return encode_packed_frame(
                        pack_query(
                            request_id,
                            request["tenant"],
                            request["pid"],
                            request["operation"],
                            request.get("at"),
                        )
                    )
                if op == "interact" and set(request) <= {
                    "v", "id", "op", "tenant", "pid", "at",
                }:
                    return encode_packed_frame(
                        pack_interact(
                            request_id,
                            request["tenant"],
                            request["pid"],
                            request.get("at"),
                        )
                    )
            except (struct.error, KeyError, AttributeError, UnicodeEncodeError, TypeError):
                pass
    return encode_frame(request)


def encode_response_frame(response: Dict[str, Any], packed: bool = False) -> bytes:
    """Encode a response, packing recognised success shapes when *packed*.

    Only responses to requests that themselves arrived packed should pass
    ``packed=True`` -- answer-in-kind keeps both sides encoding-agnostic
    without any per-connection mode state.  Error envelopes and unpackable
    values fall back to JSON.
    """
    if packed and response.get("ok"):
        request_id = response.get("id")
        result = response.get("result")
        if (
            isinstance(request_id, int)
            and not isinstance(request_id, bool)
            and isinstance(result, dict)
        ):
            try:
                keys = set(result)
                if keys == {"granted", "reason", "interaction_age", "time"}:
                    return encode_packed_frame(
                        pack_query_ok(
                            request_id,
                            result["granted"],
                            result["reason"],
                            result["interaction_age"],
                            result["time"],
                        )
                    )
                if keys == {"time"}:
                    return encode_packed_frame(
                        pack_interact_ok(request_id, result["time"])
                    )
            except (struct.error, AttributeError, UnicodeEncodeError, TypeError):
                pass
    return encode_frame(response)


def ok_response(request_id: Any, result: Dict[str, Any]) -> Dict[str, Any]:
    """Build a success envelope echoing the request's correlation id."""
    return {"v": PROTOCOL_VERSION, "id": request_id, "ok": True, "result": result}


def error_response(request_id: Any, code: str, message: str) -> Dict[str, Any]:
    """Build an error envelope echoing the request's correlation id."""
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": False,
        "error": code,
        "message": message,
    }


class FrameDecoder:
    """Incremental frame parser for stream transports (the sync client).

    Feed it raw bytes as they arrive; it yields complete envelope dicts --
    JSON and packed (wire v2) frames alike, transparently.  The asyncio
    side uses ``readexactly`` instead and never buffers more than one
    frame.
    """

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Append *data*; return every complete envelope now available."""
        self._buffer.extend(data)
        frames: List[Dict[str, Any]] = []
        while True:
            if len(self._buffer) < HEADER_SIZE:
                return frames
            (raw,) = _HEADER.unpack_from(self._buffer)
            packed = bool(raw & PACKED_BIT)
            length = raw & LENGTH_MASK
            if length > self.max_frame:
                raise FrameError(
                    E_FRAME_TOO_LARGE,
                    f"frame of {length} bytes exceeds the {self.max_frame}-byte bound",
                )
            end = HEADER_SIZE + length
            if len(self._buffer) < end:
                return frames
            body = bytes(self._buffer[HEADER_SIZE:end])
            del self._buffer[:end]
            frames.append(unpack_body(body) if packed else decode_body(body))

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting frame completion."""
        return len(self._buffer)
