"""The Overhaul service wire protocol.

Framing
-------

Every message -- request or response, either direction -- is one *frame*:

    +----------------+----------------------------------+
    | 4 bytes, ``!I``| UTF-8 JSON object (*length* bytes)|
    +----------------+----------------------------------+

The length prefix counts the body only.  Frames above the receiver's
``max_frame`` bound are rejected with :data:`E_FRAME_TOO_LARGE` and the
connection is closed -- a length prefix is a promise the receiver must be
able to refuse *before* buffering the body, or a single client could make
the daemon allocate arbitrarily.

Envelopes
---------

Requests are JSON objects::

    {"v": 1, "id": 7, "op": "query", "tenant": "t0",
     "pid": 12, "operation": "paste"}

``v`` is the protocol version (mismatches are answered with
:data:`E_UNSUPPORTED_VERSION`, never guessed at); ``id`` is an opaque
client-chosen correlation value echoed verbatim in the response, which is
what makes response pipelining possible; ``op`` selects the verb.

Responses are either::

    {"v": 1, "id": 7, "ok": true, "result": {...}}
    {"v": 1, "id": 7, "ok": false, "error": "RETRY_LATER", "message": "..."}

Responses are encoded *canonically* (sorted keys, minimal separators), so
two transcripts of the same logical session are byte-identical -- the
property the determinism gates ``cmp``.

Error codes
-----------

- ``BAD_REQUEST``          -- unparseable or structurally invalid request;
- ``UNSUPPORTED_VERSION``  -- the ``v`` field is not this protocol version;
- ``RETRY_LATER``          -- backpressure: the connection's pending-request
  budget is exhausted; the client should back off and resend;
- ``SHUTTING_DOWN``        -- the daemon is draining; in-flight requests
  still complete, new ones are refused;
- ``FRAME_TOO_LARGE``      -- the announced frame exceeds the bound (the
  connection is closed after this response);
- ``TENANT_LIMIT``         -- the tenant partition table is full;
- ``INTERNAL``             -- unexpected server-side failure.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List, Optional

#: Version of the request/response envelope.  Bump on breaking changes;
#: the daemon answers old versions with E_UNSUPPORTED_VERSION rather than
#: misinterpreting them.
PROTOCOL_VERSION = 1

#: Default upper bound on a frame body, in bytes.  Service requests are
#: small (a query is < 200 bytes); anything near this bound is hostile or
#: broken.
DEFAULT_MAX_FRAME = 64 * 1024

_HEADER = struct.Struct("!I")
HEADER_SIZE = _HEADER.size

E_BAD_REQUEST = "BAD_REQUEST"
E_UNSUPPORTED_VERSION = "UNSUPPORTED_VERSION"
E_RETRY_LATER = "RETRY_LATER"
E_SHUTTING_DOWN = "SHUTTING_DOWN"
E_FRAME_TOO_LARGE = "FRAME_TOO_LARGE"
E_TENANT_LIMIT = "TENANT_LIMIT"
E_INTERNAL = "INTERNAL"


class FrameError(Exception):
    """A violation of the framing layer (oversized or malformed frame)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def canonical_json(obj: Any) -> str:
    """The one serialisation the determinism gates compare byte-for-byte."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def encode_frame(obj: Dict[str, Any]) -> bytes:
    """Serialise one envelope into a length-prefixed frame."""
    body = canonical_json(obj).encode("utf-8")
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> Dict[str, Any]:
    """Parse a frame body; raise :class:`FrameError` on garbage."""
    try:
        obj = json.loads(body)
    except (ValueError, UnicodeDecodeError) as error:
        raise FrameError(E_BAD_REQUEST, f"frame body is not valid JSON: {error}")
    if not isinstance(obj, dict):
        raise FrameError(E_BAD_REQUEST, "frame body must be a JSON object")
    return obj


def ok_response(request_id: Any, result: Dict[str, Any]) -> Dict[str, Any]:
    """Build a success envelope echoing the request's correlation id."""
    return {"v": PROTOCOL_VERSION, "id": request_id, "ok": True, "result": result}


def error_response(request_id: Any, code: str, message: str) -> Dict[str, Any]:
    """Build an error envelope echoing the request's correlation id."""
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": False,
        "error": code,
        "message": message,
    }


class FrameDecoder:
    """Incremental frame parser for stream transports (the sync client).

    Feed it raw bytes as they arrive; it yields complete envelope dicts.
    The asyncio side uses ``readexactly`` instead and never buffers more
    than one frame.
    """

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Append *data*; return every complete envelope now available."""
        self._buffer.extend(data)
        frames: List[Dict[str, Any]] = []
        while True:
            if len(self._buffer) < HEADER_SIZE:
                return frames
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > self.max_frame:
                raise FrameError(
                    E_FRAME_TOO_LARGE,
                    f"frame of {length} bytes exceeds the {self.max_frame}-byte bound",
                )
            end = HEADER_SIZE + length
            if len(self._buffer) < end:
                return frames
            body = bytes(self._buffer[HEADER_SIZE:end])
            del self._buffer[:end]
            frames.append(decode_body(body))

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting frame completion."""
        return len(self._buffer)
