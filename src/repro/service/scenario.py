"""Scripted deterministic workloads for the service determinism gates.

The acceptance property of the service layer is byte-identity: for a
seeded request script, a tenant's responses (and final decision-history
digest) must be the same bytes whether the script runs

- in process, straight through :meth:`PermissionService.apply` -- the
  reference;
- over a socket against the daemon, through batching and backpressure;
- alone on the daemon, or interleaved with any number of other tenants.

:func:`scripted_requests` generates the script: per-tenant request streams
derived with :meth:`RandomSource.spawn` keyed ``("service", index)``, so
tenant *i*'s stream is a pure function of (seed, i) -- independent of how
many tenants run beside it.  :func:`transcript_json` renders a tenant's
responses canonically; the CI gate ``cmp``\\ s these files across runs.

Run as a module::

    python -m repro.service.scenario --inprocess          --tenants 1 --ops 200 --seed 7
    python -m repro.service.scenario --unix /tmp/o.sock   --tenants 2 --ops 200 --seed 7

Both print tenant 0's transcript; the outputs must be byte-identical.
"""

from __future__ import annotations

import argparse
import sys
from functools import lru_cache
from typing import Any, Dict, List, Optional

from repro.service.core import PermissionService
from repro.service.protocol import PROTOCOL_VERSION, canonical_json
from repro.sim.rng import RandomSource

#: Operations the scripted clients exercise, spanning all three audit
#: categories (clipboard, screen, device).
_OPERATIONS = ("paste", "copy", "screen_capture", "microphone:/dev/mic0", "camera:/dev/cam0")

#: App names each tenant spawns.
_APPS = ("alpha", "beta")


def tenant_name(index: int) -> str:
    return f"t{index}"


@lru_cache(maxsize=1)
def _script_pids() -> tuple:
    """The pids the script's spawns will produce.

    Tenant partitions boot identically (same init, same display-manager
    task), so the n-th spawned process always gets the same pid in every
    partition.  One probe partition discovers the mapping.
    """
    probe = PermissionService()
    return tuple(
        probe.apply(
            {"v": PROTOCOL_VERSION, "op": "spawn", "tenant": "probe", "name": name}
        )["result"]["pid"]
        for name in _APPS
    )


def scripted_requests(seed: int, ops: int, tenant_index: int) -> List[Dict[str, Any]]:
    """The deterministic request script for one tenant.

    A pure function of ``(seed, ops, tenant_index)`` -- neighbouring
    tenants, transports, and batch boundaries cannot perturb it.  The
    script opens with a ``reset`` (so reruns against a long-lived daemon
    start from a fresh partition) and closes with ``digest`` + ``stats``.
    """
    rng = RandomSource(seed, "service").spawn(("service", tenant_index))
    tenant = tenant_name(tenant_index)
    requests: List[Dict[str, Any]] = [
        {"op": "reset", "tenant": tenant},
        {"op": "spawn", "tenant": tenant, "name": _APPS[0]},
        {"op": "spawn", "tenant": tenant, "name": _APPS[1]},
    ]
    pids = _script_pids()
    for _ in range(ops):
        roll = rng.random()
        pid = rng.choice(pids)
        if roll < 0.25:
            requests.append({"op": "interact", "tenant": tenant, "pid": pid})
        elif roll < 0.80:
            requests.append(
                {
                    "op": "query",
                    "tenant": tenant,
                    "pid": pid,
                    "operation": rng.choice(_OPERATIONS),
                }
            )
        elif roll < 0.95:
            requests.append(
                {"op": "advance", "tenant": tenant, "dt": rng.randint(1_000, 2_500_000)}
            )
        else:
            requests.append({"op": "stats", "tenant": tenant})
    requests.append({"op": "digest", "tenant": tenant})
    requests.append({"op": "stats", "tenant": tenant})
    return requests


def interleave(streams: List[List[Dict[str, Any]]]) -> List[Dict[str, Any]]:
    """Round-robin merge -- the multi-tenant arrival order."""
    merged: List[Dict[str, Any]] = []
    for step in range(max(len(s) for s in streams)):
        for stream in streams:
            if step < len(stream):
                merged.append(stream[step])
    return merged


def envelope(request: Dict[str, Any], request_id: int) -> Dict[str, Any]:
    """Wrap a bare script entry in a versioned wire envelope."""
    wrapped = {"v": PROTOCOL_VERSION, "id": request_id, **request}
    return wrapped


def slice_script(
    script: List[Dict[str, Any]], first: Optional[int] = None, skip: int = 0
) -> List[Dict[str, Any]]:
    """Cut a script for phased runs (warm-restart gates).

    ``first=K`` keeps the opening K requests (phase one, ending in a
    drain); ``skip=K`` drops them (phase two against the restarted
    daemon -- skipping, crucially, the leading ``reset`` that would wipe
    the restored partition).  ``first`` applies before ``skip``.
    """
    if first is not None:
        script = script[:first]
    if skip:
        script = script[skip:]
    return script


def run_inprocess(
    tenants: int,
    ops: int,
    seed: int,
    first: Optional[int] = None,
    skip: int = 0,
    service: Optional[PermissionService] = None,
) -> Dict[int, List[Dict[str, Any]]]:
    """The reference: apply the interleaved script to a fresh service.

    Returns tenant_index -> responses (in that tenant's script order).
    Requests are applied one at a time -- the *unbatched* reference the
    daemon's coalesced batches must match byte for byte.  Pass *service*
    to continue a phased run on existing partitions.
    """
    if service is None:
        service = PermissionService()
    streams = [
        slice_script(scripted_requests(seed, ops, i), first, skip)
        for i in range(tenants)
    ]
    tagged: List[List[Any]] = []
    for index, stream in enumerate(streams):
        tagged.append([[index, request] for request in stream])
    merged = interleave(tagged)
    responses: Dict[int, List[Dict[str, Any]]] = {i: [] for i in range(tenants)}
    for request_id, (tenant_index, request) in enumerate(merged, start=1):
        responses[tenant_index].append(service.apply(envelope(request, request_id)))
    return responses


def run_against_daemon(
    tenants: int,
    ops: int,
    seed: int,
    unix_path: Optional[str] = None,
    tcp: Optional[tuple] = None,
    first: Optional[int] = None,
    skip: int = 0,
    packed: bool = False,
) -> Dict[int, List[Dict[str, Any]]]:
    """Drive the daemon: one connection per tenant, scripts in parallel.

    Each tenant's requests are sent strictly in script order on its own
    connection (the per-tenant ordering contract); different tenants'
    requests race freely, exercising the daemon's cross-connection
    batching.  With ``packed`` the clients negotiate wire v2 -- the
    transcripts must not change by a byte.
    """
    import asyncio

    from repro.service.client import AsyncServiceClient

    async def tenant_session(index: int) -> List[Dict[str, Any]]:
        client = await AsyncServiceClient.connect(
            unix_path=unix_path, tcp=tcp, packed=packed
        )
        try:
            out: List[Dict[str, Any]] = []
            for request in slice_script(scripted_requests(seed, ops, index), first, skip):
                out.append(await client.request_raw(**request))
            return out
        finally:
            await client.close()

    async def main() -> Dict[int, List[Dict[str, Any]]]:
        results = await asyncio.gather(*(tenant_session(i) for i in range(tenants)))
        return dict(enumerate(results))

    return asyncio.run(main())


def normalize(responses: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Strip transport-chosen fields (the correlation id) from responses.

    The in-process reference and each daemon connection number their
    requests differently; everything else must match exactly.
    """
    cleaned = []
    for response in responses:
        copy = dict(response)
        copy.pop("id", None)
        cleaned.append(copy)
    return cleaned


def transcript_json(responses: List[Dict[str, Any]], seed: int, ops: int) -> str:
    """The canonical transcript the determinism gates ``cmp``."""
    return canonical_json(
        {"seed": seed, "ops": ops, "responses": normalize(responses)}
    ) + "\n"


def collect_digests(
    tenants: int,
    unix_path: Optional[str] = None,
    tcp: Optional[tuple] = None,
    service: Optional[PermissionService] = None,
) -> Dict[str, str]:
    """Every tenant's decision-history digest, as one canonical map.

    The warm-restart gate ``cmp``\\ s this across a drain/restart boundary
    against an uninterrupted run: identical maps mean the snapshots
    reproduced every partition exactly.
    """
    names = [tenant_name(i) for i in range(tenants)]
    if service is not None:
        return {
            name: service.apply(
                {"v": PROTOCOL_VERSION, "id": 0, "op": "digest", "tenant": name}
            )["result"]["digest"]
            for name in names
        }
    from repro.service.client import ServiceClient

    with ServiceClient(unix_path=unix_path, tcp=tcp) as client:
        return {name: client.digest(name)["digest"] for name in names}


def digests_json(digests: Dict[str, str]) -> str:
    return canonical_json({"digests": digests}) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="scripted determinism scenario for the permission daemon"
    )
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument("--unix", metavar="PATH", help="daemon UNIX socket")
    target.add_argument("--tcp", metavar="HOST:PORT", help="daemon TCP address")
    target.add_argument(
        "--inprocess", action="store_true",
        help="run the reference in process (no daemon)",
    )
    parser.add_argument("--tenants", type=int, default=1)
    parser.add_argument("--ops", type=int, default=200)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--tenant-index", type=int, default=0,
        help="which tenant's transcript to print",
    )
    parser.add_argument(
        "--first", type=int, default=None, metavar="K",
        help="send only the first K requests of each tenant's script",
    )
    parser.add_argument(
        "--skip", type=int, default=0, metavar="K",
        help="skip the first K requests of each tenant's script "
             "(phase two of a warm-restart run)",
    )
    parser.add_argument(
        "--packed", action="store_true",
        help="negotiate the packed (wire v2) encoding; transcripts must "
             "be byte-identical to JSON runs",
    )
    parser.add_argument(
        "--digests", action="store_true",
        help="print every tenant's decision digest instead of a transcript",
    )
    args = parser.parse_args(argv)

    tcp = None
    if args.tcp:
        host, _, port = args.tcp.rpartition(":")
        tcp = (host, int(port))

    if args.inprocess:
        service = PermissionService()
        responses = run_inprocess(
            args.tenants, args.ops, args.seed,
            first=args.first, skip=args.skip, service=service,
        )
        if args.digests:
            sys.stdout.write(digests_json(collect_digests(args.tenants, service=service)))
            return 0
    else:
        responses = run_against_daemon(
            args.tenants, args.ops, args.seed,
            unix_path=args.unix, tcp=tcp,
            first=args.first, skip=args.skip, packed=args.packed,
        )
        if args.digests:
            sys.stdout.write(
                digests_json(collect_digests(args.tenants, unix_path=args.unix, tcp=tcp))
            )
            return 0
    sys.stdout.write(
        transcript_json(responses[args.tenant_index], args.seed, args.ops)
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
