"""The transport-agnostic service boundary around the permission monitor.

:class:`PermissionService` is a pure request engine: envelopes in,
envelopes out, no sockets anywhere.  The asyncio daemon feeds it batches;
tests and the in-process determinism reference feed it the same requests
directly.  Whatever the transport, the same bytes come back -- that is the
service-layer determinism contract.

Tenancy
-------

Every stateful request names a *tenant* -- one simulated machine.  Tenants
are partitions: each wraps an independent sim core (its own scheduler,
kernel, X server, permission monitor) built lazily on first touch, so
tenant A's interactions can never unlock tenant B, and a tenant can be
``reset`` without perturbing its neighbours.  The sim clock is decoupled
from wall clock: a tenant's time advances only through explicit ``advance``
requests (and the timestamps its own requests carry), never because the
daemon has been up for a while.

Verbs
-----

========  =====================================================================
``ping``     liveness + version check (no tenant)
``spawn``    create (or look up) a named process in the tenant; returns its pid
``interact`` N_{A,t}: record an interaction notification for a pid
``query``    Q_{A,t}: permission query; returns grant/deny + reason + age
``advance``  advance the tenant's sim clock by ``dt`` microseconds
``digest``   canonical SHA-256 over the tenant's full decision history
``stats``    tenant sim-state counters, or service-wide counters without tenant
``reset``    discard the tenant's partition entirely
========  =====================================================================

Batching
--------

:meth:`PermissionService.apply_many` is the daemon's per-tick coalescing
pass: consecutive ``query`` requests for the same tenant are flushed
through one :meth:`NetlinkChannel.send_many_to_kernel` call, so the channel
checks and handler lookup run once per run of queries instead of once per
query.  Batch boundaries are *not observable*: the netlink batch dispatches
payloads in order with semantics identical to a loop of single sends, so
any partitioning of a request sequence produces the same responses.
"""

from __future__ import annotations

import hashlib
import re
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.config import OverhaulConfig, paper_config
from repro.core.notifications import MSG_INTERACTION, MSG_PERMISSION_QUERY
from repro.core.system import Machine
from repro.obs.counters import Counters
from repro.service.protocol import (
    PROTOCOL_VERSION,
    E_BAD_REQUEST,
    E_INTERNAL,
    E_TENANT_LIMIT,
    E_UNSUPPORTED_VERSION,
    canonical_json,
    error_response,
    ok_response,
)

#: Tenant ids are short path/metric-safe tokens (they appear in counter
#: names and logs).
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.:-]{0,63}$")
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")


class RequestError(Exception):
    """A structurally invalid request (becomes a BAD_REQUEST envelope)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def _field_int(request: Dict[str, Any], name: str, minimum: Optional[int] = None) -> int:
    value = request.get(name)
    if not isinstance(value, int) or isinstance(value, bool):
        raise RequestError(E_BAD_REQUEST, f"{name!r} must be an integer")
    if minimum is not None and value < minimum:
        raise RequestError(E_BAD_REQUEST, f"{name!r} must be >= {minimum}")
    return value


def _field_opt_int(request: Dict[str, Any], name: str, minimum: int = 0) -> Optional[int]:
    if name not in request or request[name] is None:
        return None
    return _field_int(request, name, minimum)


class TenantState:
    """One tenant partition: an independent sim core plus its process map."""

    def __init__(
        self,
        tenant_id: str,
        config_factory: Optional[Callable[[], OverhaulConfig]] = None,
        journal: bool = False,
    ) -> None:
        factory = config_factory if config_factory is not None else paper_config
        self.tenant_id = tenant_id
        self.machine = Machine.with_overhaul(factory(), name=f"tenant:{tenant_id}")
        overhaul = self.machine.overhaul
        assert overhaul is not None
        self._channel = overhaul.channel
        self._xtask = self.machine.xserver_task
        self._monitor = overhaul.monitor
        #: name -> pid of processes spawned through the service.
        self._apps: Dict[str, int] = {}
        #: Total requests this tenant has served (all verbs).
        self.requests_applied = 0
        #: When journalling (snapshot support) is on: the normalised
        #: state-mutating request history, in application order.  Replaying
        #: it against a fresh partition reproduces this partition exactly
        #: (the service determinism contract), which is what a snapshot
        #: *is* -- read-only verbs (stats, digest) are never recorded.
        self.journal: Optional[List[Dict[str, Any]]] = [] if journal else None

    # -- verbs ---------------------------------------------------------------

    def spawn(self, name: str) -> Dict[str, Any]:
        """Create (idempotently) a process named *name*; return its pid.

        Idempotence keeps retried spawns harmless: a client that resent a
        ``spawn`` after a RETRY_LATER gets the same pid back.
        """
        existing = self._apps.get(name)
        if existing is not None:
            return {"pid": existing, "name": name, "created": False}
        task, _ = self.machine.launch(f"/usr/bin/{name}", comm=name, connect_x=False)
        self._apps[name] = task.pid
        return {"pid": task.pid, "name": name, "created": True}

    def interact(self, pid: int, at: Optional[int]) -> Dict[str, Any]:
        """Record N_{A,t} through the display manager's netlink channel."""
        timestamp = at if at is not None else self.machine.now
        self._channel.send_to_kernel(
            self._xtask, MSG_INTERACTION, {"pid": pid, "timestamp": timestamp}
        )
        return {"time": timestamp}

    def query_payload(self, pid: int, operation: str, at: Optional[int]) -> Dict[str, Any]:
        """The netlink payload for one Q_{A,t} (shared by single and batch)."""
        timestamp = at if at is not None else self.machine.now
        return {"pid": pid, "operation": operation, "timestamp": timestamp}

    def query_many(self, payloads: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Answer a run of queries in one authenticated netlink flush."""
        replies = self._channel.send_many_to_kernel(
            self._xtask, MSG_PERMISSION_QUERY, payloads
        )
        return [
            {
                "granted": reply["granted"],
                "reason": reply["reason"],
                "interaction_age": reply["interaction_age"],
                "time": payload["timestamp"],
            }
            for payload, reply in zip(payloads, replies)
        ]

    def advance(self, dt: int) -> Dict[str, Any]:
        """Advance this tenant's sim clock by *dt* microseconds."""
        self.machine.run_for(dt)
        return {"time": self.machine.now}

    def digest(self) -> Dict[str, Any]:
        """A canonical SHA-256 over the tenant's entire decision history.

        Two tenants that served the same request sequence -- on any
        transport, any batching, any neighbour load -- produce the same
        digest.  The determinism gates compare exactly this.
        """
        monitor = self._monitor
        payload = canonical_json(
            {
                "decisions": [list(d) for d in monitor.decisions],
                "grants": monitor.grant_count,
                "denies": monitor.deny_count,
                "time": self.machine.now,
            }
        )
        return {
            "digest": hashlib.sha256(payload.encode("utf-8")).hexdigest(),
            "decisions": len(monitor.decisions),
            "time": self.machine.now,
        }

    def stats(self) -> Dict[str, Any]:
        """Sim-state counters only -- deterministic for a given history."""
        monitor = self._monitor
        return {
            "time": self.machine.now,
            "queries": monitor.queries_answered,
            "grants": monitor.grant_count,
            "denies": monitor.deny_count,
            "notifications": monitor.notifications_received,
            "decisions": len(monitor.decisions),
            "cache_hits": monitor.cache_hits,
            "cache_misses": monitor.cache_misses,
            "pids": len(self._apps),
            "requests": self.requests_applied,
        }


#: Parsed-request shapes produced by ``PermissionService._parse``.
_KIND_RESPONSE = 0  # (response,) -- already final (errors, ping, stats...)
_KIND_QUERY = 1     # (request_id, tenant, pid, operation, at) -- batchable
_KIND_ACTION = 2    # (request_id, thunk) -- run in order, not batchable


class PermissionService:
    """The multi-tenant request engine; see the module docstring."""

    def __init__(
        self,
        config_factory: Optional[Callable[[], OverhaulConfig]] = None,
        counters: Optional[Counters] = None,
        max_tenants: int = 1024,
        journal: bool = False,
    ) -> None:
        self._config_factory = config_factory
        self.counters = counters if counters is not None else Counters()
        self.max_tenants = max_tenants
        #: When true, every tenant records its mutating request history so
        #: :mod:`repro.service.snapshot` can persist and replay it.  Off by
        #: default: a long-lived daemon without snapshots must not grow a
        #: journal without bound.
        self.journal = journal
        self._tenants: Dict[str, TenantState] = {}

    # -- tenancy -------------------------------------------------------------

    @property
    def tenant_ids(self) -> List[str]:
        return sorted(self._tenants)

    def tenant(self, tenant_id: str) -> TenantState:
        """The tenant's partition, created on first touch."""
        state = self._tenants.get(tenant_id)
        if state is None:
            if len(self._tenants) >= self.max_tenants:
                raise RequestError(
                    E_TENANT_LIMIT,
                    f"tenant table is full ({self.max_tenants} partitions)",
                )
            state = TenantState(tenant_id, self._config_factory, journal=self.journal)
            self._tenants[tenant_id] = state
            self.counters.inc("service.tenants_created")
        return state

    def reset_tenant(self, tenant_id: str) -> bool:
        """Discard a tenant's partition; True when one existed."""
        existed = self._tenants.pop(tenant_id, None) is not None
        if existed:
            self.counters.inc("service.tenants_reset")
        return existed

    def _tenant_for(self, request: Dict[str, Any]) -> TenantState:
        tenant_id = request.get("tenant")
        if not isinstance(tenant_id, str) or not _TENANT_RE.match(tenant_id):
            raise RequestError(
                E_BAD_REQUEST,
                "'tenant' must be a 1-64 char token of [A-Za-z0-9_.:-]",
            )
        return self.tenant(tenant_id)

    # -- request engine ------------------------------------------------------

    def apply(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Serve one request (the unbatched path)."""
        return self.apply_many([request])[0]

    def apply_many(self, requests: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Serve a batch; responses line up with *requests* by position.

        Consecutive queries for the same tenant collapse into one netlink
        flush.  Every other verb executes in arrival order, so a batch is
        observably identical to a loop of single applies.
        """
        parsed = [self._parse(request) for request in requests]
        responses: List[Optional[Dict[str, Any]]] = [None] * len(parsed)
        index = 0
        count = len(parsed)
        while index < count:
            kind, data = parsed[index]
            if kind == _KIND_RESPONSE:
                responses[index] = data
                index += 1
                continue
            if kind == _KIND_ACTION:
                request_id, thunk = data
                responses[index] = self._run_action(request_id, thunk)
                index += 1
                continue
            # A run of batchable queries against one tenant.
            tenant = data[1]
            end = index
            while end < count and parsed[end][0] == _KIND_QUERY and parsed[end][1][1] is tenant:
                end += 1
            run = parsed[index:end]
            payloads = [
                tenant.query_payload(entry[1][2], entry[1][3], entry[1][4])
                for entry in run
            ]
            try:
                results = tenant.query_many(payloads)
            except Exception as error:  # kernel-side invariant violation
                for offset, entry in enumerate(run):
                    responses[index + offset] = error_response(
                        entry[1][0], E_INTERNAL, f"query failed: {error}"
                    )
            else:
                tenant.requests_applied += len(run)
                if tenant.journal is not None:
                    for entry in run:
                        _, _, pid, operation, at = entry[1]
                        record: Dict[str, Any] = {
                            "op": "query",
                            "tenant": tenant.tenant_id,
                            "pid": pid,
                            "operation": operation,
                        }
                        if at is not None:
                            record["at"] = at
                        tenant.journal.append(record)
                for offset, (entry, result) in enumerate(zip(run, results)):
                    responses[index + offset] = ok_response(entry[1][0], result)
            index = end
        self.counters.inc("service.requests", len(requests))
        return responses  # type: ignore[return-value]

    def _run_action(self, request_id: Any, thunk: Callable[[], Dict[str, Any]]) -> Dict[str, Any]:
        try:
            result = thunk()
        except RequestError as error:
            self.counters.inc("service.errors")
            return error_response(request_id, error.code, str(error))
        except Exception as error:
            self.counters.inc("service.errors")
            return error_response(request_id, E_INTERNAL, f"{type(error).__name__}: {error}")
        return ok_response(request_id, result)

    # -- parsing -------------------------------------------------------------

    def _parse(self, request: Any) -> Tuple[int, Any]:
        """Classify one request into a final response, a query, or an action."""
        if not isinstance(request, dict):
            self.counters.inc("service.errors")
            return _KIND_RESPONSE, error_response(
                None, E_BAD_REQUEST, "request must be a JSON object"
            )
        request_id = request.get("id")
        version = request.get("v")
        if version != PROTOCOL_VERSION:
            self.counters.inc("service.errors")
            return _KIND_RESPONSE, error_response(
                request_id,
                E_UNSUPPORTED_VERSION,
                f"protocol version {version!r} not supported (this is v{PROTOCOL_VERSION})",
            )
        op = request.get("op")
        try:
            if op == "query":
                tenant = self._tenant_for(request)
                pid = _field_int(request, "pid")
                operation = request.get("operation")
                if not isinstance(operation, str) or not operation:
                    raise RequestError(E_BAD_REQUEST, "'operation' must be a non-empty string")
                at = _field_opt_int(request, "at")
                self.counters.inc("service.queries")
                self.counters.inc(f"service.tenant_requests.{tenant.tenant_id}")
                # The payload is built at *flush* time, not here: an ``at``
                # of None means "the tenant's clock when this query runs",
                # and an earlier action in the same batch (an ``advance``)
                # may still move that clock.
                return _KIND_QUERY, (request_id, tenant, pid, operation, at)
            if op == "ping":
                return _KIND_RESPONSE, ok_response(
                    request_id, {"pong": True, "version": PROTOCOL_VERSION}
                )
            if op == "spawn":
                tenant = self._tenant_for(request)
                name = request.get("name")
                if not isinstance(name, str) or not _NAME_RE.match(name):
                    raise RequestError(
                        E_BAD_REQUEST, "'name' must be a 1-64 char token of [A-Za-z0-9_.-]"
                    )
                self.counters.inc(f"service.tenant_requests.{tenant.tenant_id}")
                return self._action(
                    request_id, tenant, lambda: tenant.spawn(name),
                    entry={"op": "spawn", "tenant": tenant.tenant_id, "name": name},
                )
            if op == "interact":
                tenant = self._tenant_for(request)
                pid = _field_int(request, "pid")
                at = _field_opt_int(request, "at")
                self.counters.inc(f"service.tenant_requests.{tenant.tenant_id}")
                entry = {"op": "interact", "tenant": tenant.tenant_id, "pid": pid}
                if at is not None:
                    entry["at"] = at
                return self._action(
                    request_id, tenant, lambda: tenant.interact(pid, at), entry=entry
                )
            if op == "advance":
                tenant = self._tenant_for(request)
                dt = _field_int(request, "dt", minimum=0)
                self.counters.inc(f"service.tenant_requests.{tenant.tenant_id}")
                return self._action(
                    request_id, tenant, lambda: tenant.advance(dt),
                    entry={"op": "advance", "tenant": tenant.tenant_id, "dt": dt},
                )
            if op == "digest":
                tenant = self._tenant_for(request)
                return self._action(request_id, tenant, tenant.digest)
            if op == "stats":
                if "tenant" in request and request["tenant"] is not None:
                    tenant = self._tenant_for(request)
                    return self._action(request_id, tenant, tenant.stats)
                return _KIND_RESPONSE, ok_response(
                    request_id,
                    {"tenants": self.tenant_ids, "counters": self.counters.snapshot()},
                )
            if op == "reset":
                tenant_id = request.get("tenant")
                if not isinstance(tenant_id, str) or not _TENANT_RE.match(tenant_id):
                    raise RequestError(
                        E_BAD_REQUEST,
                        "'tenant' must be a 1-64 char token of [A-Za-z0-9_.:-]",
                    )
                # Deliberately history-free: whether a partition already
                # existed depends on what ran before on this daemon, and a
                # reset response must be byte-identical across runs.
                self.reset_tenant(tenant_id)
                return _KIND_RESPONSE, ok_response(request_id, {"reset": True})
            raise RequestError(E_BAD_REQUEST, f"unknown op {op!r}")
        except RequestError as error:
            self.counters.inc("service.errors")
            return _KIND_RESPONSE, error_response(request_id, error.code, str(error))

    def _action(
        self,
        request_id: Any,
        tenant: TenantState,
        thunk: Callable[[], Dict[str, Any]],
        entry: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Any]:
        def counted() -> Dict[str, Any]:
            result = thunk()
            tenant.requests_applied += 1
            if entry is not None and tenant.journal is not None:
                tenant.journal.append(entry)
            return result

        return _KIND_ACTION, (request_id, counted)
