"""Persistent tenant snapshots: drain warm, restart warm.

A tenant partition is a whole sim core -- scheduler, kernel, X server,
permission monitor -- which no serialiser can be trusted to round-trip.
But the service determinism contract already guarantees something
stronger: the same request sequence rebuilds the same partition, byte for
byte.  So a snapshot *is* the tenant's journal -- the normalised sequence
of state-mutating requests it has applied (see
:attr:`TenantState.journal`) -- written as versioned canonical JSON, and a
warm restart is a replay.  A restarted daemon's digests are identical to
an uninterrupted run's because they are produced by the same requests in
the same order.

Layout
------

One file per tenant, ``<tenant>.tenant.json`` (tenant ids are path-safe
by construction -- the service validates them against ``[A-Za-z0-9_.:-]``)::

    {"requests": [...], "tenant": "t0", "version": 1}

written atomically (temp file + rename) at the end of a graceful drain.
There is no manifest: under a shard layout every tenant file is *owned*
by exactly one ``(shard_index, shard_count)`` slot -- the one its hash
lands on -- and each draining worker rewrites the live tenants it owns
and deletes the stale files it owns (tenants that were ``reset`` and
never recreated).  Because ``hash % count`` partitions the whole
directory for any count, restarting with a different worker count simply
redistributes the same files.

Version mismatches raise :class:`SnapshotError` -- a snapshot that cannot
be replayed faithfully must fail loudly, never resurrect a half-right
tenant.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import List, Union

from repro.service.core import PermissionService
from repro.service.protocol import PROTOCOL_VERSION, canonical_json

#: Bump on any change to the snapshot file layout or journal semantics.
SNAPSHOT_VERSION = 1

#: Per-tenant snapshot file suffix.
SNAPSHOT_SUFFIX = ".tenant.json"


class SnapshotError(Exception):
    """A snapshot that cannot be trusted: wrong version, failed replay."""


def tenant_shard(tenant_id: str, shard_count: int) -> int:
    """The worker slot that owns *tenant_id* under *shard_count* workers.

    CRC32 rather than ``hash()``: the mapping must agree across processes
    and runs (PYTHONHASHSEED randomises ``hash``), because the shard
    router, every worker's snapshot load, and every worker's snapshot
    write all derive ownership from it independently.
    """
    if shard_count <= 1:
        return 0
    return zlib.crc32(tenant_id.encode("utf-8")) % shard_count


def snapshot_path(directory: Union[str, Path], tenant_id: str) -> Path:
    return Path(directory) / f"{tenant_id}{SNAPSHOT_SUFFIX}"


def write_snapshots(
    service: PermissionService,
    directory: Union[str, Path],
    shard_index: int = 0,
    shard_count: int = 1,
) -> int:
    """Persist every live tenant this shard owns; prune stale files it owns.

    Returns the number of tenant files written.  Deleting stale owned
    files matters: a tenant that was ``reset`` after the previous drain
    would otherwise be resurrected from its old snapshot on the next
    start.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    live: set = set()
    written = 0
    for tenant_id in service.tenant_ids:
        if tenant_shard(tenant_id, shard_count) != shard_index:
            continue
        state = service.tenant(tenant_id)
        if state.journal is None:
            raise SnapshotError(
                f"tenant {tenant_id!r} has no journal; build the service "
                "with PermissionService(journal=True) to snapshot it"
            )
        live.add(tenant_id)
        payload = canonical_json(
            {
                "version": SNAPSHOT_VERSION,
                "tenant": tenant_id,
                "requests": state.journal,
            }
        )
        target = snapshot_path(directory, tenant_id)
        scratch = target.with_suffix(target.suffix + ".tmp")
        scratch.write_text(payload + "\n", encoding="utf-8")
        os.replace(scratch, target)
        written += 1
    for stale in directory.glob(f"*{SNAPSHOT_SUFFIX}"):
        tenant_id = stale.name[: -len(SNAPSHOT_SUFFIX)]
        if tenant_shard(tenant_id, shard_count) == shard_index and tenant_id not in live:
            stale.unlink()
    return written


def load_snapshots(
    service: PermissionService,
    directory: Union[str, Path],
    shard_index: int = 0,
    shard_count: int = 1,
) -> List[str]:
    """Replay every snapshot this shard owns into *service*; return tenants.

    Tenants are replayed in sorted order (determinism: restore order must
    not depend on directory iteration).  A missing directory is an empty
    snapshot set, not an error -- first boot is always cold.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    restored: List[str] = []
    for path in sorted(directory.glob(f"*{SNAPSHOT_SUFFIX}")):
        tenant_id = path.name[: -len(SNAPSHOT_SUFFIX)]
        if tenant_shard(tenant_id, shard_count) != shard_index:
            continue
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except ValueError as error:
            raise SnapshotError(f"{path} is not valid JSON: {error}")
        if not isinstance(data, dict) or data.get("version") != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"{path} has snapshot version {data.get('version')!r}; "
                f"this build reads version {SNAPSHOT_VERSION}"
            )
        if data.get("tenant") != tenant_id:
            raise SnapshotError(
                f"{path} claims tenant {data.get('tenant')!r}, "
                f"filename says {tenant_id!r}"
            )
        requests = data.get("requests")
        if not isinstance(requests, list):
            raise SnapshotError(f"{path} has no request journal")
        for position, request in enumerate(requests):
            response = service.apply({"v": PROTOCOL_VERSION, "id": 0, **request})
            if not response.get("ok"):
                raise SnapshotError(
                    f"{path} replay failed at request {position}: "
                    f"{response.get('error')}: {response.get('message')}"
                )
        restored.append(tenant_id)
    return restored
