"""Overhaul-as-a-service: the permission monitor behind a real socket.

The decision core (permission monitor + epoch cache + batched audit) was
previously reachable only through the in-process simulation.  This package
puts a transport-agnostic service boundary around it and stands up a
long-running asyncio daemon that answers permission queries and interaction
notifications over UNIX and TCP sockets from many concurrent clients:

- :mod:`repro.service.protocol` -- the length-prefixed, versioned JSON wire
  protocol (framing, error codes, canonical encoding);
- :mod:`repro.service.core` -- :class:`PermissionService`, the transport-free
  request engine: per-tenant ("machine") state partitions, each wrapping an
  independent sim core whose clock is decoupled from wall clock, plus the
  batched ``apply_many`` pass the daemon coalesces queued queries into;
- :mod:`repro.service.daemon` -- :class:`ServiceDaemon`, the asyncio server:
  bounded per-connection queues with ``RETRY_LATER`` backpressure, per-tick
  request batching, graceful drain on SIGTERM, and ``repro.obs`` counters;
- :mod:`repro.service.client` -- :class:`ServiceClient` (sync) and
  :class:`AsyncServiceClient` (pipelined asyncio) client libraries;
- :mod:`repro.service.scenario` -- the scripted deterministic workload used
  by the determinism gates (daemon output is byte-identical to the
  in-process run, and a tenant's transcript is independent of its
  neighbours);
- :mod:`repro.service.shard` -- :class:`ShardedDaemon`, the multi-process
  front door: tenants hash across N worker daemons (same protocol, private
  sockets), preserving per-tenant ordering and transcript byte-identity;
- :mod:`repro.service.snapshot` -- persistent tenant snapshots (journalled
  request replay) so a drained daemon restarts warm with identical digests.

Determinism contract: the service never injects wall-clock time into a
tenant.  A tenant's sim clock advances only through explicit ``advance``
requests, so the same request sequence produces byte-identical decisions,
digests, and counters whether it is applied in process, over a socket, in
one batch or many, alone or interleaved with other tenants.
"""

from repro.service.client import AsyncServiceClient, ServiceClient, ServiceError
from repro.service.core import PermissionService, TenantState
from repro.service.daemon import ServiceDaemon
from repro.service.protocol import (
    PROTOCOL_VERSION,
    WIRE_VERSION,
    E_BAD_REQUEST,
    E_FRAME_TOO_LARGE,
    E_INTERNAL,
    E_RETRY_LATER,
    E_SHUTTING_DOWN,
    E_UNSUPPORTED_VERSION,
    FrameDecoder,
    FrameError,
    encode_frame,
    encode_request_frame,
    encode_response_frame,
    error_response,
    ok_response,
)
from repro.service.shard import ShardedDaemon
from repro.service.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotError,
    load_snapshots,
    tenant_shard,
    write_snapshots,
)

__all__ = [
    "PROTOCOL_VERSION",
    "SNAPSHOT_VERSION",
    "WIRE_VERSION",
    "AsyncServiceClient",
    "E_BAD_REQUEST",
    "E_FRAME_TOO_LARGE",
    "E_INTERNAL",
    "E_RETRY_LATER",
    "E_SHUTTING_DOWN",
    "E_UNSUPPORTED_VERSION",
    "FrameDecoder",
    "FrameError",
    "PermissionService",
    "ServiceClient",
    "ServiceDaemon",
    "ServiceError",
    "ShardedDaemon",
    "SnapshotError",
    "TenantState",
    "encode_frame",
    "encode_request_frame",
    "encode_response_frame",
    "error_response",
    "load_snapshots",
    "ok_response",
    "tenant_shard",
    "write_snapshots",
]
