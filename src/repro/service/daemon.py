"""The long-running asyncio permission daemon.

One :class:`ServiceDaemon` serves one :class:`PermissionService` over any
mix of UNIX and TCP listeners.  The design targets thousands of concurrent
clients in front of a single-threaded decision core:

Batching
    Readers never call the core directly.  They enqueue parsed requests on
    a central queue; a single dispatcher coroutine wakes, drains everything
    queued in that event-loop tick (bounded by ``batch_limit``), and runs
    it through :meth:`PermissionService.apply_many` -- one core pass per
    tick, so consecutive queries coalesce into ``send_many``-style netlink
    flushes no matter how many sockets they arrived on.

Backpressure
    Each connection has a bounded in-flight budget (``max_pending``).  A
    client that pipelines past its budget gets an immediate ``RETRY_LATER``
    error for the overflowing request -- the daemon never buffers an
    unbounded backlog for a fast sender.  On the write side, a client that
    stops *reading* while responses accumulate past ``write_high`` bytes is
    disconnected (the response buffer is the only unbounded queue left, so
    it is the one that must be cut).

Graceful drain
    SIGTERM/SIGINT (or :meth:`begin_drain`) stops the listeners, answers
    any *newly arriving* requests with ``SHUTTING_DOWN``, lets the
    dispatcher finish every in-flight request, flushes the responses, and
    only then closes the connections and returns.

Observability
    The daemon shares a :class:`repro.obs.counters.Counters` registry with
    its service: batch counts and sizes, queue depth high-water, retries,
    drops, and per-tenant request counts all land in one snapshot that the
    ``stats`` verb (no tenant) reports over the wire.
"""

from __future__ import annotations

import asyncio
import signal
import struct
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from collections import deque

from repro.obs.counters import Counters
from repro.service.core import PermissionService
from repro.service.protocol import (
    DEFAULT_MAX_FRAME,
    HEADER_SIZE,
    LENGTH_MASK,
    PACKED_BIT,
    PROTOCOL_VERSION,
    WIRE_VERSION,
    E_FRAME_TOO_LARGE,
    E_INTERNAL,
    E_RETRY_LATER,
    E_SHUTTING_DOWN,
    FrameError,
    decode_body,
    encode_response_frame,
    error_response,
    ok_response,
    unpack_body,
)

_HEADER = struct.Struct("!I")


class _Connection:
    """Per-socket state: the writer, the in-flight budget, liveness."""

    __slots__ = ("writer", "pending", "closed", "peer")

    def __init__(self, writer: asyncio.StreamWriter, peer: str) -> None:
        self.writer = writer
        self.pending = 0
        self.closed = False
        self.peer = peer


class ServiceDaemon:
    """Serve a :class:`PermissionService` over UNIX and/or TCP sockets."""

    def __init__(
        self,
        service: PermissionService,
        unix_path: Optional[str] = None,
        tcp_host: Optional[str] = None,
        tcp_port: int = 0,
        max_pending: int = 256,
        batch_limit: int = 512,
        max_frame: int = DEFAULT_MAX_FRAME,
        write_high: int = 1 << 20,
        snapshot_dir: Optional[str] = None,
        shard_index: int = 0,
        shard_count: int = 1,
    ) -> None:
        if unix_path is None and tcp_host is None:
            raise ValueError("daemon needs at least one listener (unix_path or tcp_host)")
        if snapshot_dir is not None and not service.journal:
            raise ValueError("snapshot_dir needs a journalling service "
                             "(PermissionService(journal=True))")
        self.service = service
        self.counters: Counters = service.counters
        self.unix_path = unix_path
        self.tcp_host = tcp_host
        self.tcp_port = tcp_port
        self.max_pending = max_pending
        self.batch_limit = batch_limit
        self.max_frame = max_frame
        self.write_high = write_high
        #: Warm-restart state: tenants whose hash lands on this daemon's
        #: (shard_index, shard_count) slot are replayed from snapshot_dir
        #: on start and re-snapshotted at the end of a graceful drain.
        self.snapshot_dir = snapshot_dir
        self.shard_index = shard_index
        self.shard_count = shard_count

        self._servers: List[asyncio.AbstractServer] = []
        self._connections: Set[_Connection] = set()
        self._queue: Deque[Tuple[_Connection, Dict[str, Any], bool]] = deque()
        self._queue_event = asyncio.Event()
        self._draining = False
        self._stopped = asyncio.Event()
        self._dispatcher: Optional[asyncio.Task] = None
        #: Test hook: when set to an asyncio.Event, the dispatcher waits on
        #: it before every batch -- lets tests pile requests up
        #: deterministically to exercise backpressure and drain.
        self.dispatch_gate: Optional[asyncio.Event] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the listeners and start the dispatcher."""
        if self.snapshot_dir is not None:
            from repro.service.snapshot import load_snapshots

            restored = load_snapshots(
                self.service, self.snapshot_dir,
                shard_index=self.shard_index, shard_count=self.shard_count,
            )
            self.counters.inc("service.tenants_restored", len(restored))
        if self.unix_path is not None:
            server = await asyncio.start_unix_server(self._on_connect, path=self.unix_path)
            self._servers.append(server)
        if self.tcp_host is not None:
            server = await asyncio.start_server(
                self._on_connect, host=self.tcp_host, port=self.tcp_port
            )
            # Record the kernel-assigned port for port-0 binds.
            self.tcp_port = server.sockets[0].getsockname()[1]
            self._servers.append(server)
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    def begin_drain(self) -> None:
        """Stop accepting, finish in-flight work, then shut down."""
        if self._draining:
            return
        self._draining = True
        for server in self._servers:
            server.close()
        self._queue_event.set()  # wake the dispatcher even if idle

    async def wait_stopped(self) -> None:
        """Block until the drain has fully completed."""
        await self._stopped.wait()

    async def run_until_signalled(self) -> None:
        """Serve until SIGTERM/SIGINT, then drain gracefully and return."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.begin_drain)
            except NotImplementedError:  # pragma: no cover - non-POSIX loops
                pass
        try:
            await self.wait_stopped()
        finally:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.remove_signal_handler(signum)
                except NotImplementedError:  # pragma: no cover
                    pass

    # -- connection handling ---------------------------------------------------

    async def _on_connect(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        conn = _Connection(writer, peer=repr(peername))
        self._connections.add(conn)
        self.counters.inc("service.connections")
        try:
            await self._read_loop(reader, conn)
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass  # client went away; queued requests are dropped on reply
        finally:
            conn.closed = True
            self._connections.discard(conn)
            try:
                writer.close()
            except Exception:  # pragma: no cover - transport already dead
                pass

    async def _read_loop(self, reader: asyncio.StreamReader, conn: _Connection) -> None:
        while True:
            header = await reader.readexactly(HEADER_SIZE)
            (raw,) = _HEADER.unpack(header)
            packed = bool(raw & PACKED_BIT)
            length = raw & LENGTH_MASK
            if length > self.max_frame:
                # Refuse before buffering the body; the stream position is
                # unrecoverable after a lie this size, so also close.
                self.counters.inc("service.frames_rejected")
                self._send(conn, error_response(
                    None,
                    E_FRAME_TOO_LARGE,
                    f"frame of {length} bytes exceeds the {self.max_frame}-byte bound",
                ))
                return
            body = await reader.readexactly(length)
            try:
                request = unpack_body(body) if packed else decode_body(body)
            except FrameError as error:
                # Parse failures are answerable (the stream framing is
                # intact), but a peer speaking garbage gets one diagnostic
                # and the boot.
                self.counters.inc("service.frames_rejected")
                self._send(conn, error_response(None, error.code, str(error)))
                return
            if self._draining:
                self.counters.inc("service.refused_draining")
                self._send(conn, error_response(
                    request.get("id"), E_SHUTTING_DOWN, "daemon is draining"
                ), packed)
                continue
            if request.get("op") == "hello":
                # Wire-encoding negotiation is a transport concern the
                # request engine never sees.  Answer which encodings this
                # daemon accepts; the client flips to packed (or not) and
                # each side keeps answering frames in the arrival encoding.
                offered = request.get("encodings")
                takes_packed = isinstance(offered, list) and "packed" in offered
                self._send(conn, ok_response(request.get("id"), {
                    "encoding": "packed" if takes_packed else "json",
                    "wire_version": WIRE_VERSION if takes_packed else 1,
                    "version": PROTOCOL_VERSION,
                }))
                continue
            if conn.pending >= self.max_pending:
                # Backpressure: answer now, buffer nothing.
                self.counters.inc("service.retry_later")
                self._send(conn, error_response(
                    request.get("id"),
                    E_RETRY_LATER,
                    f"connection has {conn.pending} requests in flight "
                    f"(budget {self.max_pending}); retry later",
                ), packed)
                continue
            conn.pending += 1
            self._queue.append((conn, request, packed))
            self._queue_event.set()

    def _send(
        self, conn: _Connection, response: Dict[str, Any], packed: bool = False
    ) -> None:
        """Write one frame unless the connection is gone or hopeless.

        *packed* is the encoding the request arrived in; the response
        answers in kind (error envelopes always fall back to JSON).
        """
        if conn.closed:
            self.counters.inc("service.responses_dropped")
            return
        writer = conn.writer
        transport = writer.transport
        if transport is None or transport.is_closing():
            self.counters.inc("service.responses_dropped")
            return
        writer.write(encode_response_frame(response, packed))
        if transport.get_write_buffer_size() > self.write_high:
            # The client stopped reading; its response backlog is the one
            # buffer with no request-side bound, so cut it here rather
            # than grow without limit.
            self.counters.inc("service.slow_client_drops")
            conn.closed = True
            writer.close()

    # -- dispatch --------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        queue = self._queue
        counters = self.counters
        try:
            while True:
                while not queue:
                    if self._draining:
                        await self._finish_drain()
                        return
                    self._queue_event.clear()
                    await self._queue_event.wait()
                if self.dispatch_gate is not None:
                    await self.dispatch_gate.wait()
                depth = len(queue)
                if depth > counters.get("service.queue_depth_high"):
                    counters.set("service.queue_depth_high", depth)
                batch = [queue.popleft() for _ in range(min(depth, self.batch_limit))]
                counters.inc("service.batches")
                counters.inc("service.batched_requests", len(batch))
                if len(batch) > counters.get("service.batch_size_high"):
                    counters.set("service.batch_size_high", len(batch))
                try:
                    responses = self.service.apply_many([req for _, req, _ in batch])
                except Exception as error:  # noqa: BLE001 - the last line of defence
                    # A request that detonates past every per-request guard
                    # in the core must not take the dispatcher with it --
                    # that made the daemon a zombie: accepting frames,
                    # answering nothing, leaking pending credits.  Answer
                    # the whole batch with E_INTERNAL, return the credits,
                    # and keep dispatching.
                    counters.inc("service.dispatch_errors")
                    detail = f"{type(error).__name__}: {error}"
                    for conn, request, packed in batch:
                        conn.pending -= 1
                        request_id = (
                            request.get("id") if isinstance(request, dict) else None
                        )
                        self._send(conn, error_response(
                            request_id, E_INTERNAL, f"batch dispatch failed: {detail}"
                        ))
                    await asyncio.sleep(0)
                    continue
                for (conn, _, packed), response in zip(batch, responses):
                    conn.pending -= 1
                    self._send(conn, response, packed)
                # One cooperative yield per batch: lets readers refill the
                # queue (growing the next coalesced batch) and writers
                # actually flush.
                await asyncio.sleep(0)
        except asyncio.CancelledError:  # pragma: no cover - hard stop path
            raise

    async def _finish_drain(self) -> None:
        """Flush and close every connection, then mark the daemon stopped."""
        for server in self._servers:
            try:
                await server.wait_closed()
            except Exception:  # pragma: no cover
                pass
        for conn in list(self._connections):
            conn.closed = True
            try:
                if conn.writer.transport is not None and not conn.writer.transport.is_closing():
                    await conn.writer.drain()
                conn.writer.close()
            except Exception:
                pass
        self._connections.clear()
        if self.snapshot_dir is not None:
            # Every in-flight request is answered by now, so the journals
            # are complete: persist them for the next warm start.
            from repro.service.snapshot import write_snapshots

            written = write_snapshots(
                self.service, self.snapshot_dir,
                shard_index=self.shard_index, shard_count=self.shard_count,
            )
            self.counters.inc("service.tenants_snapshotted", written)
        self._stopped.set()

    # -- introspection ---------------------------------------------------------

    @property
    def connection_count(self) -> int:
        return len(self._connections)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def draining(self) -> bool:
        return self._draining
