"""Service latency/throughput rig for the ``service_query*`` benchmarks.

:class:`ServiceRig` runs a real daemon -- its own event loop on a
background thread, a UNIX socket in a temp dir -- and drives it from the
caller's thread with many concurrent pipelined
:class:`AsyncServiceClient` connections, exactly the deployment shape the
SLO is stated against (>= 10k queries/s from >= 100 clients).

Two scale axes beyond the single-daemon default:

- ``shard_workers=N`` serves through a :class:`ShardedDaemon` -- N worker
  *processes* behind the router -- with the benchmark tenants spread
  evenly across every worker (``service_query_sharded``);
- ``client_procs=M`` splits the load generator itself across M persistent
  subprocesses, because on a many-core host a single client event loop
  saturates one core long before N workers do.  ``packed=True`` makes the
  clients negotiate the wire-v2 encoding, shrinking per-request CPU on
  both sides.

Each ``run(n)`` splits *n* permission queries across the client pool,
keeps a bounded pipeline window per connection (well under the daemon's
``max_pending`` budget, so the benchmark measures service time rather
than backpressure retries), and records a wall-clock latency sample per
request.  After a run, :attr:`bench_extra` carries the client count and
p50/p99 microsecond latencies for ``BENCH_baseline.json``.
"""

from __future__ import annotations

import asyncio
import json
import os
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.service.client import AsyncServiceClient
from repro.service.core import PermissionService
from repro.service.daemon import ServiceDaemon

#: Concurrent client connections the rig opens -- the SLO's floor.
DEFAULT_CLIENTS = 100

#: Requests each connection keeps in flight.  Kept well below the
#: daemon's max_pending budget so no request ever sees RETRY_LATER.
PIPELINE_WINDOW = 16

#: Tenants per shard worker: enough that every worker process is loaded,
#: few enough that partitions stay cache-warm.
TENANTS_PER_WORKER = 2


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


def _shard_tenants(workers: int, per_worker: int = TENANTS_PER_WORKER) -> List[str]:
    """Benchmark tenant names spread evenly across every shard worker."""
    from repro.service.snapshot import tenant_shard

    chosen: Dict[int, List[str]] = {i: [] for i in range(workers)}
    index = 0
    while any(len(names) < per_worker for names in chosen.values()):
        name = f"bench{index}"
        owner = tenant_shard(name, workers)
        if len(chosen[owner]) < per_worker:
            chosen[owner].append(name)
        index += 1
    return [name for owner in range(workers) for name in chosen[owner]]


async def _drive_pool(
    unix_path: str,
    assignments: List[Tuple[str, int]],
    packed: bool,
    n: int,
) -> List[float]:
    """Issue *n* queries across one pool of pipelined connections.

    ``assignments[i]`` is client *i*'s (tenant, pid); the function is
    module-level so the multi-process load generator can reuse it.
    """
    clients = len(assignments)
    base, spare = divmod(n, clients)
    shares = [base + (1 if i < spare else 0) for i in range(clients)]
    latencies: List[float] = []

    async def one_client(share: int, tenant: str, pid: int) -> None:
        client = await AsyncServiceClient.connect(unix_path=unix_path, packed=packed)
        try:
            in_flight: set = set()

            async def fire() -> None:
                start = time.monotonic()
                await client.request(
                    "query", tenant=tenant, pid=pid, operation="paste"
                )
                latencies.append(time.monotonic() - start)

            for _ in range(share):
                if len(in_flight) >= PIPELINE_WINDOW:
                    done, in_flight_left = await asyncio.wait(
                        in_flight, return_when=asyncio.FIRST_COMPLETED
                    )
                    in_flight = in_flight_left
                    for task in done:
                        task.result()
                in_flight.add(asyncio.ensure_future(fire()))
            if in_flight:
                await asyncio.gather(*in_flight)
        finally:
            await client.close()

    await asyncio.gather(
        *(
            one_client(share, tenant, pid)
            for share, (tenant, pid) in zip(shares, assignments)
        )
    )
    return latencies


def _loadgen_main(argv: Optional[List[str]] = None) -> int:
    """Persistent load-generator subprocess (spawned by ``client_procs``).

    argv: unix_path, packed(0|1), assignments-json.  Protocol: one request
    count per stdin line; one ``{"latencies": [...]}`` JSON line back.
    """
    args = argv if argv is not None else sys.argv[1:]
    unix_path, packed_flag, assignments_json = args[0], args[1], args[2]
    packed = bool(int(packed_flag))
    assignments = [tuple(a) for a in json.loads(assignments_json)]
    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        latencies = asyncio.run(_drive_pool(unix_path, assignments, packed, int(line)))
        sys.stdout.write(json.dumps({"latencies": latencies}) + "\n")
        sys.stdout.flush()
    return 0


class ServiceRig:
    """Daemon-on-a-thread benchmark rig with a concurrent client pool."""

    def __init__(
        self,
        clients: int = DEFAULT_CLIENTS,
        tenant: str = "bench",
        shard_workers: Optional[int] = None,
        packed: bool = False,
        client_procs: int = 1,
    ) -> None:
        self.clients = clients
        self.shard_workers = shard_workers
        self.packed = packed
        self.client_procs = max(1, client_procs)
        self.tenants = (
            _shard_tenants(shard_workers) if shard_workers else [tenant]
        )
        self.tenant = self.tenants[0]
        self.bench_extra: Dict[str, Any] = {}
        self._tmpdir = tempfile.mkdtemp(prefix="overhaul-svc-")
        self.unix_path = f"{self._tmpdir}/bench.sock"
        self._daemon: Any = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()
        self._ready.wait()
        self._assignments = self._setup()
        self._loadgens: List[subprocess.Popen] = []
        if self.client_procs > 1:
            self._spawn_loadgens()

    # -- daemon side ---------------------------------------------------------

    def _serve(self) -> None:
        async def body() -> None:
            if self.shard_workers:
                from repro.service.shard import ShardedDaemon

                self._daemon = ShardedDaemon(
                    self.shard_workers, unix_path=self.unix_path
                )
            else:
                self._daemon = ServiceDaemon(
                    PermissionService(), unix_path=self.unix_path
                )
            await self._daemon.start()
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await self._daemon.wait_stopped()

        asyncio.run(body())

    def _setup(self) -> List[Tuple[str, int]]:
        """Spawn + interact per tenant so queries hit the granted path;
        return each client's (tenant, pid) assignment."""

        async def body() -> Dict[str, List[int]]:
            client = await AsyncServiceClient.connect(unix_path=self.unix_path)
            try:
                pids: Dict[str, List[int]] = {}
                for tenant in self.tenants:
                    pids[tenant] = []
                    for name in ("alpha", "beta"):
                        result = await client.request("spawn", tenant=tenant, name=name)
                        pids[tenant].append(result["pid"])
                    for pid in pids[tenant]:
                        await client.request("interact", tenant=tenant, pid=pid)
                return pids
            finally:
                await client.close()

        pids = asyncio.run(body())
        assignments = []
        for i in range(self.clients):
            tenant = self.tenants[i % len(self.tenants)]
            pid_list = pids[tenant]
            assignments.append((tenant, pid_list[(i // len(self.tenants)) % len(pid_list)]))
        return assignments

    def _spawn_loadgens(self) -> None:
        per_proc, spare = divmod(self.clients, self.client_procs)
        cursor = 0
        env = dict(os.environ)
        src_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env["PYTHONPATH"] = (
            src_root + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src_root
        )
        for index in range(self.client_procs):
            count = per_proc + (1 if index < spare else 0)
            share = self._assignments[cursor : cursor + count]
            cursor += count
            self._loadgens.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-c",
                        "from repro.service.bench import _loadgen_main; "
                        "raise SystemExit(_loadgen_main())",
                        self.unix_path,
                        "1" if self.packed else "0",
                        json.dumps(share),
                    ],
                    stdin=subprocess.PIPE,
                    stdout=subprocess.PIPE,
                    env=env,
                    text=True,
                )
            )

    # -- client side ---------------------------------------------------------

    def run(self, n: int) -> int:
        """Issue *n* queries across the client pool; return decisions made."""
        if self._loadgens:
            latencies = self._run_multiproc(n)
        else:
            latencies = asyncio.run(
                _drive_pool(self.unix_path, self._assignments, self.packed, n)
            )
        latencies.sort()
        self.bench_extra = {
            "clients": self.clients,
            "p50_us": round(_percentile(latencies, 0.50) * 1e6, 1),
            "p99_us": round(_percentile(latencies, 0.99) * 1e6, 1),
        }
        if self.shard_workers:
            self.bench_extra["shard_workers"] = self.shard_workers
        if self.packed:
            self.bench_extra["packed"] = True
        if self.client_procs > 1:
            self.bench_extra["client_procs"] = self.client_procs
        return len(latencies)

    def _run_multiproc(self, n: int) -> List[float]:
        base, spare = divmod(n, len(self._loadgens))
        for index, proc in enumerate(self._loadgens):
            share = base + (1 if index < spare else 0)
            assert proc.stdin is not None
            proc.stdin.write(f"{share}\n")
            proc.stdin.flush()
        latencies: List[float] = []
        for proc in self._loadgens:
            assert proc.stdout is not None
            reply = proc.stdout.readline()
            latencies.extend(json.loads(reply)["latencies"])
        return latencies

    # -- teardown ------------------------------------------------------------

    def close(self) -> None:
        for proc in self._loadgens:
            try:
                if proc.stdin is not None:
                    proc.stdin.close()
                proc.wait(timeout=10)
            except Exception:  # pragma: no cover - hung loadgen
                proc.kill()
        self._loadgens = []
        if self._loop is not None and self._daemon is not None:
            self._loop.call_soon_threadsafe(self._daemon.begin_drain)
            self._thread.join(timeout=30)
        shutil.rmtree(self._tmpdir, ignore_errors=True)
