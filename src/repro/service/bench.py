"""Service latency/throughput rig for the ``service_query`` benchmark.

:class:`ServiceRig` runs a real :class:`ServiceDaemon` -- its own event
loop on a background thread, a UNIX socket in a temp dir -- and drives it
from the caller's thread with many concurrent pipelined
:class:`AsyncServiceClient` connections, exactly the deployment shape the
SLO is stated against (>= 10k queries/s from >= 100 clients).

Each ``run(n)`` splits *n* permission queries across the client pool,
keeps a bounded pipeline window per connection (well under the daemon's
``max_pending`` budget, so the benchmark measures service time rather
than backpressure retries), and records a wall-clock latency sample per
request.  After a run, :attr:`bench_extra` carries the client count and
p50/p99 microsecond latencies for ``BENCH_baseline.json``.
"""

from __future__ import annotations

import asyncio
import shutil
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional

from repro.service.client import AsyncServiceClient
from repro.service.core import PermissionService
from repro.service.daemon import ServiceDaemon

#: Concurrent client connections the rig opens -- the SLO's floor.
DEFAULT_CLIENTS = 100

#: Requests each connection keeps in flight.  Kept well below the
#: daemon's max_pending budget so no request ever sees RETRY_LATER.
PIPELINE_WINDOW = 16


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


class ServiceRig:
    """Daemon-on-a-thread benchmark rig with a concurrent client pool."""

    def __init__(self, clients: int = DEFAULT_CLIENTS, tenant: str = "bench") -> None:
        self.clients = clients
        self.tenant = tenant
        self.bench_extra: Dict[str, Any] = {}
        self._tmpdir = tempfile.mkdtemp(prefix="overhaul-svc-")
        self.unix_path = f"{self._tmpdir}/bench.sock"
        self._daemon: Optional[ServiceDaemon] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()
        self._ready.wait()
        self._pids = self._setup()

    # -- daemon side ---------------------------------------------------------

    def _serve(self) -> None:
        async def body() -> None:
            self._daemon = ServiceDaemon(PermissionService(), unix_path=self.unix_path)
            await self._daemon.start()
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await self._daemon.wait_stopped()

        asyncio.run(body())

    def _setup(self) -> List[int]:
        """Spawn two apps and interact, so queries hit the granted path."""

        async def body() -> List[int]:
            client = await AsyncServiceClient.connect(unix_path=self.unix_path)
            try:
                pids = []
                for name in ("alpha", "beta"):
                    result = await client.request("spawn", tenant=self.tenant, name=name)
                    pids.append(result["pid"])
                for pid in pids:
                    await client.request("interact", tenant=self.tenant, pid=pid)
                return pids
            finally:
                await client.close()

        return asyncio.run(body())

    # -- client side ---------------------------------------------------------

    def run(self, n: int) -> int:
        """Issue *n* queries across the client pool; return decisions made."""
        latencies = asyncio.run(self._drive(n))
        latencies.sort()
        self.bench_extra = {
            "clients": self.clients,
            "p50_us": round(_percentile(latencies, 0.50) * 1e6, 1),
            "p99_us": round(_percentile(latencies, 0.99) * 1e6, 1),
        }
        return len(latencies)

    async def _drive(self, n: int) -> List[float]:
        base, spare = divmod(n, self.clients)
        shares = [base + (1 if i < spare else 0) for i in range(self.clients)]
        latencies: List[float] = []

        async def one_client(share: int, pid: int) -> None:
            client = await AsyncServiceClient.connect(unix_path=self.unix_path)
            try:
                in_flight: set = set()

                async def fire() -> None:
                    start = time.monotonic()
                    await client.request(
                        "query", tenant=self.tenant, pid=pid, operation="paste"
                    )
                    latencies.append(time.monotonic() - start)

                for _ in range(share):
                    if len(in_flight) >= PIPELINE_WINDOW:
                        done, in_flight_left = await asyncio.wait(
                            in_flight, return_when=asyncio.FIRST_COMPLETED
                        )
                        in_flight = in_flight_left
                        for task in done:
                            task.result()
                    in_flight.add(asyncio.ensure_future(fire()))
                if in_flight:
                    await asyncio.gather(*in_flight)
            finally:
                await client.close()

        await asyncio.gather(
            *(
                one_client(share, self._pids[i % len(self._pids)])
                for i, share in enumerate(shares)
            )
        )
        return latencies

    # -- teardown ------------------------------------------------------------

    def close(self) -> None:
        if self._loop is not None and self._daemon is not None:
            self._loop.call_soon_threadsafe(self._daemon.begin_drain)
            self._thread.join(timeout=10)
        shutil.rmtree(self._tmpdir, ignore_errors=True)
