"""A desktop session manager with autostart entries.

Models the setting that produced the paper's single spurious alert: "When
Skype was configured to automatically start on boot, this situation led to
a camera access without user interaction" (Section V-C).  The session
manager launches autostart applications at login time -- descendants of the
session process, which has never received input, so P1 gives them nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List

from repro.kernel.task import Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import Machine


@dataclass
class AutostartEntry:
    """One .desktop-style autostart entry."""

    name: str
    factory: Callable[["Machine", Task], object]  # builds the app at login


class SessionManager:
    """A logind/xdg-autostart style session starter."""

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self.task, _ = machine.launch(
            "/usr/bin/gnome-session", comm="gnome-session", connect_x=False
        )
        self._entries: List[AutostartEntry] = []
        self.started: List[object] = []

    def add_autostart(
        self, name: str, factory: Callable[["Machine", Task], object]
    ) -> None:
        """Register an autostart entry (before login)."""
        self._entries.append(AutostartEntry(name, factory))

    def login(self) -> List[object]:
        """Start every autostart entry as a child of the session.

        None of the launched applications carries interaction provenance:
        the session process itself has never been interacted with, so P1
        propagates NEVER -- which is exactly why autostart device probes
        trip Overhaul.
        """
        for entry in self._entries:
            self.started.append(entry.factory(self.machine, self.task))
        return list(self.started)
