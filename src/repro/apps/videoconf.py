"""Video-conferencing applications (the paper's Skype scenario).

Two behaviours matter to the evaluation:

- the normal call flow of Figure 1 and the V-B usability study: the user
  clicks the call button and the app immediately opens microphone and
  camera -- granted under Overhaul because the click precedes the opens
  within delta;
- the V-C false-positive finding: "Skype attempted to access the camera as
  soon as the program was launched, before the user logs into the
  application", which Overhaul blocks when Skype autostarts at boot --
  the evaluation's single (arguably correct) spurious alert.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.apps.base import SimApp
from repro.kernel.errors import OverhaulDenied
from repro.xserver.window import Geometry

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import Machine


class VideoConfApp(SimApp):
    """A Skype-like client."""

    default_geometry = Geometry(500, 200, 900, 650)

    def __init__(
        self,
        machine: "Machine",
        comm: str = "skype",
        startup_camera_check: bool = False,
        **kwargs,
    ) -> None:
        super().__init__(machine, f"/usr/bin/{comm}", comm=comm, **kwargs)
        self.mic_fd: Optional[int] = None
        self.cam_fd: Optional[int] = None
        self.call_active = False
        self.startup_blocked = False
        self.calls_placed = 0
        self.captured_frames: List[bytes] = []
        if startup_camera_check:
            self._startup_camera_probe()

    def _startup_camera_probe(self) -> None:
        """Skype's launch-time camera probe (the V-C finding).

        Runs before any user interaction; under Overhaul the open is denied
        and an alert fires, but the app keeps working -- "This did not
        cause subsequent video calls to fail".
        """
        try:
            fd = self.open_device("video0")
        except OverhaulDenied:
            self.startup_blocked = True
        else:
            self.close_fd(fd)

    def place_call(self) -> None:
        """The user-initiated call: opens mic and camera.

        Callers are responsible for having delivered the user click (the
        scenario's ``app.click()``); this method performs only the
        application's own device opens, like a real unmodified client.
        """
        self.mic_fd = self.open_device("mic0")
        self.cam_fd = self.open_device("video0")
        self.call_active = True
        self.calls_placed += 1

    def click_call_button(self) -> None:
        """Convenience: the full Figure 1 interaction (click, then call)."""
        self.click()
        self.place_call()

    def sample_call_media(self, count: int = 256) -> bytes:
        """Read media from the open devices during a call."""
        if not self.call_active or self.cam_fd is None:
            raise RuntimeError("no active call")
        frame = self.read_device(self.cam_fd, count)
        self.captured_frames.append(frame)
        return frame

    def hang_up(self) -> None:
        """End the call and release the devices."""
        if self.mic_fd is not None:
            self.close_fd(self.mic_fd)
            self.mic_fd = None
        if self.cam_fd is not None:
            self.close_fd(self.cam_fd)
            self.cam_fd = None
        self.call_active = False
