"""A multi-process browser (Figure 4).

Chromium-style architecture: the user interacts with the main *Browser*
window; each tab is a separate process, commanded over shared-memory IPC.
When the user launches a web video-conference, the camera is opened by the
*tab* process -- which never received any input event.  The access works
under Overhaul only because:

1. fork duplicated the browser's task_struct into the tab (P1), and
2. the shared-memory command write/read propagated the (fresher)
   interaction timestamp through the page-fault interception path (P2).

The tab is deliberately forked *early* (at browser startup, long before any
interaction) so the scenario genuinely depends on the shm propagation, not
just on fork inheritance.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.apps.base import SimApp
from repro.kernel.task import Task
from repro.xserver.window import Geometry

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import Machine

#: Commands the browser writes into the shared command page.
CMD_IDLE = b"\x00"
CMD_START_VIDEOCONF = b"\x01"
CMD_START_AUDIOCALL = b"\x02"


class BrowserTab:
    """A tab renderer process: no input, commands arrive over shm."""

    def __init__(self, machine: "Machine", browser_task: Task, shm_segment) -> None:
        self.machine = machine
        # The renderer is forked from the browser (Chromium zygote-style).
        self.task = machine.kernel.sys_spawn(
            browser_task, "/usr/bin/browser", comm="browser-tab"
        )
        self._segment = shm_segment
        self._area = machine.kernel.shm.attach(self.task, shm_segment)
        self.camera_fd: Optional[int] = None
        self.mic_fd: Optional[int] = None
        self.captured: List[bytes] = []

    def poll_command(self) -> bytes:
        """Read the command byte from shared memory (P2 adopt on read)."""
        return self.machine.kernel.shm.read(self.task, self._area, 0, 1)

    def execute_pending(self) -> Optional[str]:
        """Act on the current shared-memory command.

        Camera/microphone opens happen *here*, in the tab process.  Raises
        :class:`repro.kernel.errors.OverhaulDenied` if the access is
        blocked (e.g. when propagation was defeated).
        """
        command = self.poll_command()
        if command == CMD_START_VIDEOCONF:
            self.camera_fd = self.machine.kernel.sys_open(
                self.task, self.machine.kernel.device_path("video0")
            )
            self.mic_fd = self.machine.kernel.sys_open(
                self.task, self.machine.kernel.device_path("mic0")
            )
            return "videoconf"
        if command == CMD_START_AUDIOCALL:
            self.mic_fd = self.machine.kernel.sys_open(
                self.task, self.machine.kernel.device_path("mic0")
            )
            return "audiocall"
        return None


class Browser(SimApp):
    """The main browser process."""

    default_geometry = Geometry(300, 100, 1200, 800)

    def __init__(self, machine: "Machine", comm: str = "browser", **kwargs) -> None:
        super().__init__(machine, "/usr/bin/browser", comm=comm, **kwargs)
        # One shared command page between browser and its tabs.
        self._segment = machine.kernel.shm.shm_open(
            f"/browser-cmd-{self.pid}", num_pages=1
        )
        self._area = machine.kernel.shm.attach(self.task, self._segment)
        self.tabs: List[BrowserTab] = []

    def open_tab(self) -> BrowserTab:
        """Fork a renderer process for a new tab."""
        tab = BrowserTab(self.machine, self.task, self._segment)
        self.tabs.append(tab)
        return tab

    def command_tab(self, tab: BrowserTab, command: bytes) -> Optional[str]:
        """Send *command* to *tab* via shared memory and let it execute.

        The write embeds the browser's interaction timestamp in the segment
        (through the fault path when the mapping is armed); the tab's read
        adopts it; the tab then opens the devices.
        """
        self.machine.kernel.shm.write(self.task, self._area, 0, command)
        return tab.execute_pending()

    def start_video_conference(self, tab: Optional[BrowserTab] = None) -> BrowserTab:
        """The Figure 4 flow, minus the user click (scenarios drive that).

        Opens a tab if needed and commands it to start the video call.
        """
        target = tab if tab is not None else (self.tabs[0] if self.tabs else self.open_tab())
        self.command_tab(target, CMD_START_VIDEOCONF)
        return target
