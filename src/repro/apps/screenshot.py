"""Screenshot and screen-recording utilities.

Covers the V-C application classes: one-shot screenshot tools (Shot of
Figure 3, GNOME Screenshot, Shutter), *delayed* screenshot tools (the
documented Overhaul limitation -- the interaction expires before the timer
fires), and desktop recorders (repeated captures kept alive by continued
interaction).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.apps.base import SimApp
from repro.sim.time import Timestamp, from_seconds
from repro.xserver.errors import BadAccess
from repro.xserver.window import Geometry

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import Machine


class ScreenshotTool(SimApp):
    """A one-shot screenshot utility."""

    default_geometry = Geometry(700, 400, 400, 200)

    def __init__(self, machine: "Machine", comm: str = "shot", **kwargs) -> None:
        super().__init__(machine, f"/usr/bin/{comm}", comm=comm, **kwargs)
        self.shots: List[bytes] = []

    def take_screenshot(self, via: str = "core") -> bytes:
        """Capture the root window.  Raises BadAccess on an Overhaul denial."""
        shot = self.capture_screen(via=via)
        self.shots.append(shot)
        return shot

    def click_and_shoot(self, via: str = "core") -> bytes:
        """The normal flow: user clicks the capture button, tool captures."""
        self.click()
        return self.take_screenshot(via=via)


class DelayedScreenshotTool(ScreenshotTool):
    """A screenshot tool with a user-configurable delay.

    The V-C limitation: "some of the screenshot tools we tested included an
    option to delay the shot by a user-specified time.  By design, OVERHAUL
    does not support this functionality since the interaction notifications
    associated with the application expire before the screen could be
    captured."
    """

    def __init__(
        self,
        machine: "Machine",
        delay: Timestamp = from_seconds(5.0),
        comm: str = "shutter",
        **kwargs,
    ) -> None:
        super().__init__(machine, comm=comm, **kwargs)
        self.delay = delay
        self.delayed_result: Optional[bytes] = None
        self.delayed_denied = False

    def click_and_shoot_delayed(self) -> None:
        """User clicks, the tool arms a timer, the capture fires later.

        After the timer, ``delayed_result`` holds the image or
        ``delayed_denied`` is True (the expected Overhaul outcome whenever
        ``delay`` exceeds the interaction threshold).
        """
        self.click()

        def fire() -> None:
            try:
                self.delayed_result = self.take_screenshot()
            except BadAccess:
                self.delayed_denied = True

        self.machine.scheduler.schedule_after(
            self.delay, fire, label=f"delayed-shot({self.comm})"
        )


class DesktopRecorder(SimApp):
    """A recordMyDesktop-style screencaster: periodic captures.

    Each capture needs interaction within delta, so a recording session
    only survives while the user keeps interacting with the machine --
    the behaviour the paper observed with its desktop-recording app in the
    21-day study (captures were granted because the user was active).
    """

    default_geometry = Geometry(50, 700, 500, 250)

    def __init__(self, machine: "Machine", comm: str = "recordmydesktop", **kwargs) -> None:
        super().__init__(machine, f"/usr/bin/{comm}", comm=comm, **kwargs)
        self.frames: List[bytes] = []
        self.denied_frames = 0

    def capture_frame(self) -> Optional[bytes]:
        """One frame of the recording; None when denied."""
        try:
            frame = self.capture_screen()
        except BadAccess:
            self.denied_frames += 1
            return None
        self.frames.append(frame)
        return frame

    def record(self, frames: int, interval: Timestamp, keep_interacting: bool = True) -> None:
        """Record *frames* captures, *interval* apart.

        With ``keep_interacting`` the user clicks the recorder before every
        frame (the realistic active-session case); without it, frames after
        the threshold are denied -- demonstrating the scheduled-task
        limitation.
        """
        for _ in range(frames):
            if keep_interacting:
                self.click()
            self.capture_frame()
            self.machine.run_for(interval)
