"""The simulated-application framework.

Applications in the reproduction are *unmodified* in the paper's sense:
they use only the ordinary OS and X11 surfaces (syscalls, X requests, the
ICCCM clipboard convention) and contain no Overhaul-specific code.  That is
the point of the transparency goal (D1) -- the same application classes run
identically on a baseline and an Overhaul machine; only the outcomes of
their requests differ.

:class:`SimApp` bundles a kernel task with an X client and implements the
client-side halves of the protocols apps need:

- window management and painting;
- the full ICCCM copy & paste protocol of Figure 6 (both the selection-owner
  and requestor roles);
- device opens through the (possibly augmented) ``open()`` syscall;
- screen capture through GetImage / XShmGetImage / CopyArea.

Event delivery in the simulation is synchronous, so a ``paste_text()`` call
performs the complete 13-step round trip before returning -- convenient for
scenarios, faithful in ordering.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from repro.kernel.credentials import DEFAULT_USER, Credentials
from repro.kernel.task import Task
from repro.kernel.vfs import OpenMode
from repro.xserver.client import XClient
from repro.xserver.events import EventKind, XEvent
from repro.xserver.selection import CLIPBOARD
from repro.xserver.window import Geometry, Window

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import Machine

#: Conventional property used for selection transfers (like xclip's).
SELECTION_PROPERTY = "XSEL_DATA"


class SimApp:
    """One simulated application process connected to the X server."""

    #: Default window geometry; subclasses override for variety.
    default_geometry = Geometry(100, 100, 640, 480)

    def __init__(
        self,
        machine: "Machine",
        exe_path: str,
        comm: Optional[str] = None,
        creds: Credentials = DEFAULT_USER,
        parent_task: Optional[Task] = None,
        with_window: bool = True,
        map_window: bool = True,
        window_title: Optional[str] = None,
        geometry: Optional[Geometry] = None,
        transparent: bool = False,
    ) -> None:
        self.machine = machine
        self.task, client = machine.launch(
            exe_path, comm=comm, creds=creds, parent=parent_task
        )
        assert client is not None
        self.client: XClient = client
        self.client.on_event(self._dispatch_event)
        # The dispatch handler above consumes every event synchronously
        # (the Xlib event-loop equivalent); with nothing ever polling the
        # queue, retaining delivered events would only grow memory across
        # benchmark-scale workloads.
        self.client.queue_events = False

        self.window: Optional[Window] = None
        if with_window:
            shape = geometry if geometry is not None else self.default_geometry
            self.window = machine.xserver.create_window(
                self.client,
                Geometry(shape.x, shape.y, shape.width, shape.height),
                title=window_title if window_title is not None else self.comm,
                transparent=transparent,
            )
            if map_window:
                machine.xserver.map_window(self.client, self.window.drawable_id)

        #: Data this app would serve if it owns a selection.
        self._selection_data: Optional[bytes] = None
        #: Completed pastes (data received), for assertions.
        self.pasted: List[bytes] = []
        #: Extra event hooks subclasses/tests may add.
        self._event_hooks: List[Callable[[XEvent], None]] = []
        #: SelectionNotify payloads, reused across repeat transfers of the
        #: same (selection, property) pair -- real clipboard owners reuse
        #: their reply buffers the same way.
        self._selection_reply_cache: dict = {}

    # -- identity -----------------------------------------------------------

    @property
    def pid(self) -> int:
        return self.task.pid

    @property
    def comm(self) -> str:
        return self.task.comm

    @property
    def kernel(self):
        return self.machine.kernel

    @property
    def xserver(self):
        return self.machine.xserver

    # -- user-facing surface (driven by scenarios) ---------------------------------

    def click(self) -> None:
        """The user clicks this app's window with the hardware mouse.

        As on a real desktop, the user first brings the window to the
        front (raising does not reset the visibility clock -- only
        map/unmap cycles do, which is what the clickjacking defence keys
        on) and then clicks inside it.
        """
        if self.window is None:
            raise RuntimeError(f"{self.comm} has no window to click")
        self.xserver.raise_window(self.client, self.window.drawable_id)
        self.machine.mouse.click_window(self.window)

    def focus(self) -> None:
        """Give this app's window the input focus."""
        if self.window is None:
            raise RuntimeError(f"{self.comm} has no window to focus")
        self.xserver.set_input_focus(self.client, self.window.drawable_id)

    def type_keys(self, text: str) -> None:
        """The user types *text* with this app focused."""
        self.focus()
        self.machine.keyboard.type_text(text)

    # -- events --------------------------------------------------------------------

    def on_event(self, hook: Callable[[XEvent], None]) -> None:
        """Register an additional event hook."""
        self._event_hooks.append(hook)

    def _dispatch_event(self, event: XEvent) -> None:
        """Default event loop: serve selection requests, run hooks."""
        if event.kind is EventKind.SELECTION_REQUEST:
            self._handle_selection_request(event)
        if self._event_hooks:
            for hook in list(self._event_hooks):
                hook(event)

    # -- ICCCM clipboard: owner role (Figure 6 steps 2-4, 8-9) ------------------------

    def copy_text(self, data: bytes) -> None:
        """Claim the CLIPBOARD selection with *data* (the copy half).

        Raises :class:`repro.xserver.errors.BadAccess` if Overhaul denies
        the copy (no preceding user input).
        """
        if self.window is None:
            raise RuntimeError(f"{self.comm} needs a window to own a selection")
        self._selection_data = bytes(data)
        self.xserver.set_selection_owner(self.client, CLIPBOARD, self.window.drawable_id)

    def _handle_selection_request(self, event: XEvent) -> None:
        """The owner's reaction to SelectionRequest (steps 8-9).

        Writes the data as a property on the requestor's window, then asks
        the server (SendEvent) to deliver SelectionNotify.
        """
        if self._selection_data is None:
            return
        requestor_window = event.payload["requestor"]
        property_name = event.payload["property"]
        selection = event.payload["selection"]
        self.xserver.change_property(
            self.client, requestor_window, property_name, self._selection_data
        )
        key = (selection, property_name)
        payload = self._selection_reply_cache.get(key)
        if payload is None:
            payload = {"selection": selection, "property": property_name}
            self._selection_reply_cache[key] = payload
        self.xserver.send_event(
            self.client,
            requestor_window,
            EventKind.SELECTION_NOTIFY,
            payload=payload,
        )

    # -- ICCCM clipboard: requestor role (steps 6, 10-13) ------------------------------

    def paste_text(self) -> Optional[bytes]:
        """Request the CLIPBOARD contents (the paste half).

        Returns the pasted bytes, or None when the clipboard is empty.
        Raises :class:`repro.xserver.errors.BadAccess` on an Overhaul
        denial.  Thanks to synchronous delivery the whole round trip --
        ConvertSelection, the owner's property write, SelectionNotify,
        GetProperty-with-delete -- completes inside this call.
        """
        if self.window is None:
            raise RuntimeError(f"{self.comm} needs a window to paste into")
        transfer = self.xserver.convert_selection(
            self.client,
            CLIPBOARD,
            target="STRING",
            property_name=SELECTION_PROPERTY,
            requestor_window_id=self.window.drawable_id,
        )
        if transfer is None:
            return None
        data = self.xserver.get_property(
            self.client, self.window.drawable_id, SELECTION_PROPERTY, delete=True
        )
        if data is not None:
            self.pasted.append(data)
        return data

    # -- devices --------------------------------------------------------------------------

    def open_device(self, device_name: str, mode: OpenMode = OpenMode.READ) -> int:
        """Open a hardware device node (e.g. 'mic0') through sys_open.

        Raises :class:`repro.kernel.errors.OverhaulDenied` when Overhaul
        blocks the access.
        """
        path = self.kernel.device_path(device_name)
        return self.kernel.sys_open(self.task, path, mode)

    def read_device(self, fd: int, count: int = 1024) -> bytes:
        return self.kernel.sys_read(self.task, fd, count)

    def close_fd(self, fd: int) -> None:
        self.kernel.sys_close(self.task, fd)

    def record_from_device(self, device_name: str, count: int = 1024) -> bytes:
        """Open, sample, close -- a one-shot capture."""
        fd = self.open_device(device_name)
        try:
            return self.read_device(fd, count)
        finally:
            self.close_fd(fd)

    # -- screen ------------------------------------------------------------------------------

    def capture_screen(self, via: str = "core") -> bytes:
        """GetImage on the root window (a full-screen capture)."""
        return self.xserver.get_image(
            self.client, self.xserver.root_window.drawable_id, via=via
        )

    def capture_window(self, window: Window, via: str = "core") -> bytes:
        """GetImage on a specific window."""
        return self.xserver.get_image(self.client, window.drawable_id, via=via)

    # -- painting --------------------------------------------------------------------------------

    def paint(self, data: bytes) -> None:
        """Draw content into this app's window."""
        if self.window is None:
            raise RuntimeError(f"{self.comm} has no window to paint")
        self.xserver.draw(self.client, self.window.drawable_id, data)

    # -- lifecycle ----------------------------------------------------------------------------------

    def spawn_child(
        self,
        exe_path: str,
        comm: Optional[str] = None,
    ) -> Task:
        """fork+exec a child process (P1 applies: the child inherits this
        task's interaction timestamp)."""
        return self.kernel.sys_spawn(self.task, exe_path, comm)

    def exit(self, code: int = 0) -> None:
        """Terminate the app: disconnect from X and exit the task."""
        self.xserver.disconnect(self.client)
        if self.task.is_alive:
            self.kernel.sys_exit(self.task, code)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(pid={self.pid}, comm={self.comm!r})"
