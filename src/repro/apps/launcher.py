"""The program launcher of Figure 3.

The user interacts with *Run* (types a program name, presses Enter); Run
then fork+execs the requested program.  The launched program never received
any input itself -- it works under Overhaul only because P1 duplicated the
launcher's interaction timestamp into its task_struct at fork time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.apps.base import SimApp
from repro.kernel.task import Task
from repro.xserver.input_drivers import KEYCODE_ENTER
from repro.xserver.window import Geometry

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import Machine


class Launcher(SimApp):
    """A dmenu/krunner-style application launcher."""

    default_geometry = Geometry(600, 20, 720, 40)

    def __init__(self, machine: "Machine", **kwargs) -> None:
        super().__init__(machine, "/usr/bin/run", comm="run", **kwargs)
        self.launched: list = []

    def launch_program(self, exe_path: str, comm: Optional[str] = None) -> Task:
        """The full Figure 3 interaction: the user types the program name
        into the launcher and hits Enter; the launcher spawns the program.

        The typing delivers authentic input *to the launcher*; the child
        inherits the resulting interaction timestamp through fork (P1).
        """
        name = comm if comm is not None else exe_path.rsplit("/", 1)[-1]
        self.type_keys(name)
        self.machine.keyboard.press(KEYCODE_ENTER)
        child = self.spawn_child(exe_path, comm=name)
        self.launched.append(child)
        return child

    def launch_without_interaction(self, exe_path: str, comm: Optional[str] = None) -> Task:
        """Spawn a program with *no* user input (a session-autostart path).

        Used by tests to show that P1 propagates only what the parent
        actually has: with no interaction on record, the child gets none.
        """
        child = self.spawn_child(exe_path, comm=comm)
        self.launched.append(child)
        return child
