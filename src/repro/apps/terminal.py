"""Terminal emulator + shell: the CLI interaction path (Section IV-B).

On a graphical desktop, a command-line tool is reached through a chain the
input events never touch directly:

    keyboard -> X -> terminal emulator -> pty master -> pty slave -> shell
    -> fork/exec -> the tool

The terminal emulator is the X client receiving the keystrokes; the shell
is usually not an X client at all.  Overhaul bridges the gap in the pty
driver: the emulator's write to the master embeds its interaction
timestamp, the shell's read from the slave adopts it, and fork (P1) carries
it into the launched tool.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.apps.base import SimApp
from repro.kernel.errors import WouldBlock
from repro.kernel.task import Task
from repro.xserver.input_drivers import KEYCODE_ENTER
from repro.xserver.window import Geometry

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import Machine


class Shell:
    """A bash-like shell: a plain kernel task reading commands from a pty.

    Deliberately *not* a :class:`SimApp` -- the shell has no X connection,
    which is precisely why the pty propagation is needed.
    """

    def __init__(self, machine: "Machine", parent_task: Task, pty_pair) -> None:
        self.machine = machine
        self.task = machine.kernel.sys_spawn(parent_task, "/bin/bash", comm="bash")
        self._pty = pty_pair
        self.history: List[str] = []

    def poll_command(self) -> Optional[str]:
        """Read one newline-terminated command from the pty slave.

        The read adopts the pty's embedded interaction timestamp into the
        shell's task_struct -- the Overhaul pty-driver patch at work.
        """
        try:
            data = self._pty.read(self.task, 4096, from_master=False)
        except WouldBlock:
            return None
        command = data.decode().strip()
        if command:
            self.history.append(command)
        return command or None

    def run(self, exe_path: str, comm: Optional[str] = None) -> Task:
        """fork+exec a command-line tool (P1 carries the timestamp on)."""
        return self.machine.kernel.sys_spawn(self.task, exe_path, comm)


class TerminalEmulator(SimApp):
    """An xterm-like terminal emulator."""

    default_geometry = Geometry(200, 200, 800, 500)

    def __init__(self, machine: "Machine", **kwargs) -> None:
        super().__init__(machine, "/usr/bin/xterm", comm="xterm", **kwargs)
        self.pty = machine.kernel.pty.openpty()
        self.shell = Shell(machine, self.task, self.pty)
        self._pending_keys: List[str] = []
        self.on_event(self._on_key)

    def _on_key(self, event) -> None:
        """Echo typed characters into the pty master.

        Each keystroke the emulator receives (as an X client) is forwarded
        to the shell through the master endpoint; the write embeds the
        emulator's interaction timestamp into the pty kernel structure.
        """
        from repro.xserver.events import EventKind

        if event.kind is not EventKind.KEY_PRESS:
            return
        if event.detail is not None and event.detail >= 1000:
            self._pending_keys.append(chr(event.detail - 1000))
        elif event.detail == KEYCODE_ENTER:
            line = "".join(self._pending_keys) + "\n"
            self._pending_keys.clear()
            self.pty.write(self.task, line.encode(), from_master=True)

    def run_command(self, command_name: str, exe_path: str) -> Task:
        """The complete CLI workflow: the user types *command_name* and
        Enter; the shell reads it from the pty and execs *exe_path*.

        Returns the launched tool's task (carrying, via pty propagation and
        P1, the user's interaction timestamp).
        """
        self.type_keys(command_name)
        self.machine.keyboard.press(KEYCODE_ENTER)
        read_back = self.shell.poll_command()
        if read_back != command_name:
            raise RuntimeError(
                f"shell read {read_back!r}, expected {command_name!r}"
            )
        return self.shell.run(exe_path, comm=command_name)
