"""A miniature D-Bus: a message-bus daemon over UNIX domain sockets.

Section IV-B: "Higher-level IPC mechanisms that are built on these OS
primitives (e.g., D-Bus) are also automatically covered."  This module
makes that claim executable: the bus daemon below is an ordinary process
relaying messages over :mod:`repro.kernel.ipc.unix_socket` connections, with
no Overhaul-specific code anywhere -- and interaction timestamps still flow
publisher -> daemon -> subscriber because every socket hop runs P2.

The typical scenario (tested in tests/integration/test_dbus.py): the user
clicks a assistant UI, the UI publishes ``assistant.listen`` on the bus, a
background voice service receives it and opens the microphone -- granted,
because the user's click rode the bus with the message.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.kernel.errors import WouldBlock
from repro.kernel.ipc.unix_socket import UnixSocketConnection
from repro.kernel.task import Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import Machine

#: Well-known bus socket path.
SYSTEM_BUS_PATH = "/run/dbus/system_bus_socket"


@dataclass
class BusMessage:
    """One published message as seen by a subscriber."""

    topic: str
    payload: bytes
    sender_pid: int


def _encode(topic: str, payload: bytes, sender_pid: int) -> bytes:
    return topic.encode() + b"\x00" + str(sender_pid).encode() + b"\x00" + payload


def _decode(raw: bytes) -> BusMessage:
    topic, sender, payload = raw.split(b"\x00", 2)
    return BusMessage(topic.decode(), payload, int(sender.decode()))


class DBusConnection:
    """A client's handle to the bus."""

    def __init__(self, daemon: "DBusDaemon", task: Task, socket: UnixSocketConnection) -> None:
        self._daemon = daemon
        self.task = task
        self._socket = socket
        self.inbox: List[BusMessage] = []

    def subscribe(self, topic: str) -> None:
        """AddMatch: receive future messages on *topic*."""
        self._daemon.add_subscription(topic, self)

    def publish(self, topic: str, payload: bytes = b"") -> None:
        """Emit a signal.  The socket send embeds this task's interaction
        timestamp (P2 step 2); the daemon's dispatch moves it onward."""
        self._socket.send(self.task, _encode(topic, payload, self.task.pid))
        self._daemon.dispatch()

    def poll(self) -> Optional[BusMessage]:
        """Receive one delivered message (adopting the bus's timestamp)."""
        try:
            raw = self._socket.receive(self.task)
        except WouldBlock:
            return None
        if not raw:
            return None
        message = _decode(raw)
        self.inbox.append(message)
        return message


class DBusDaemon:
    """The bus daemon process: subscribe/publish relay, nothing more."""

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self.task, _ = machine.launch(
            "/usr/bin/dbus-daemon", comm="dbus-daemon", connect_x=False
        )
        kernel = machine.kernel
        kernel.filesystem.makedirs("/run/dbus")
        kernel.sockets.listen(self.task, SYSTEM_BUS_PATH)
        self._connections: List[DBusConnection] = []
        self._subscriptions: Dict[str, List[DBusConnection]] = defaultdict(list)
        self.messages_relayed = 0

    def connect(self, task: Task) -> DBusConnection:
        """Accept a new client onto the bus."""
        kernel = self.machine.kernel
        socket = kernel.sockets.connect(task, SYSTEM_BUS_PATH)
        accepted = kernel.sockets.accept(self.task, SYSTEM_BUS_PATH)
        assert accepted is socket
        connection = DBusConnection(self, task, socket)
        self._connections.append(connection)
        return connection

    def add_subscription(self, topic: str, connection: DBusConnection) -> None:
        if connection not in self._subscriptions[topic]:
            self._subscriptions[topic].append(connection)

    def dispatch(self) -> int:
        """Drain every client socket and relay to subscribers.

        Each receive adopts the sender's timestamp into the *daemon's*
        task_struct; each relay send embeds it into the subscriber's
        connection -- the transitive chain of Section III-D.
        """
        relayed = 0
        for connection in list(self._connections):
            while True:
                try:
                    raw = connection._socket.receive(self.task)
                except WouldBlock:
                    break
                if not raw:
                    break
                message = _decode(raw)
                for subscriber in self._subscriptions.get(message.topic, []):
                    if subscriber is connection:
                        continue
                    subscriber._socket.send(self.task, raw)
                    relayed += 1
        self.messages_relayed += relayed
        return relayed


class VoiceAssistantService:
    """A background service driven entirely over the bus.

    It has no window and receives no input; its only path to the
    microphone is the interaction provenance carried by bus messages.
    """

    LISTEN_TOPIC = "assistant.listen"

    def __init__(self, machine: "Machine", daemon: DBusDaemon) -> None:
        self.machine = machine
        self.task, _ = machine.launch(
            "/usr/bin/voice-assistantd", comm="voice-assistantd", connect_x=False
        )
        self.bus = daemon.connect(self.task)
        self.bus.subscribe(self.LISTEN_TOPIC)
        self.recordings: List[bytes] = []
        self.denied = 0

    def process_pending(self) -> None:
        """Handle queued bus commands; listen commands open the mic."""
        from repro.kernel.errors import KernelError

        while True:
            message = self.bus.poll()
            if message is None:
                return
            if message.topic != self.LISTEN_TOPIC:
                continue
            kernel = self.machine.kernel
            try:
                fd = kernel.sys_open(self.task, kernel.device_path("mic0"))
            except KernelError:
                self.denied += 1
                continue
            self.recordings.append(kernel.sys_read(self.task, fd, 256))
            kernel.sys_close(self.task, fd)
