"""Simulated applications for the Overhaul reproduction.

Every class here is an *unmodified* application in the paper's sense: it
uses only stock OS/X11 interfaces and contains no Overhaul-specific code,
so the same programs run on baseline and protected machines (transparency
goal D1).  The roster covers the evaluation's application classes
(Section V-C) plus the attack programs of the threat analysis.
"""

from repro.apps.base import SELECTION_PROPERTY, SimApp
from repro.apps.browser import (
    CMD_START_AUDIOCALL,
    CMD_START_VIDEOCONF,
    Browser,
    BrowserTab,
)
from repro.apps.dbus import (
    DBusConnection,
    DBusDaemon,
    SYSTEM_BUS_PATH,
    VoiceAssistantService,
)
from repro.apps.clipboard_apps import (
    ClipboardHistoryTool,
    OfficeApp,
    PasswordManager,
    TextEditor,
)
from repro.apps.launcher import Launcher
from repro.apps.malware import (
    ClickjackingMalware,
    ClipboardProtocolAttacker,
    FakeAlertMalware,
    InputForgeryMalware,
    PtraceInjectionMalware,
    Spyware,
    StolenItem,
)
from repro.apps.recorder import AudioRecorder, CommandLineRecorder, WebcamViewer
from repro.apps.session import AutostartEntry, SessionManager
from repro.apps.screenshot import DelayedScreenshotTool, DesktopRecorder, ScreenshotTool
from repro.apps.terminal import Shell, TerminalEmulator
from repro.apps.videoconf import VideoConfApp

__all__ = [
    "AudioRecorder",
    "AutostartEntry",
    "SessionManager",
    "Browser",
    "BrowserTab",
    "CMD_START_AUDIOCALL",
    "CMD_START_VIDEOCONF",
    "ClickjackingMalware",
    "ClipboardHistoryTool",
    "ClipboardProtocolAttacker",
    "CommandLineRecorder",
    "DBusConnection",
    "DBusDaemon",
    "DelayedScreenshotTool",
    "DesktopRecorder",
    "FakeAlertMalware",
    "InputForgeryMalware",
    "Launcher",
    "OfficeApp",
    "PasswordManager",
    "PtraceInjectionMalware",
    "SELECTION_PROPERTY",
    "SYSTEM_BUS_PATH",
    "ScreenshotTool",
    "Shell",
    "SimApp",
    "Spyware",
    "StolenItem",
    "TerminalEmulator",
    "TextEditor",
    "VideoConfApp",
    "VoiceAssistantService",
    "WebcamViewer",
]
