"""Clipboard-using applications: editors, office suites, password managers.

These drive the Figure 2 / Figure 6 protocol as ordinary ICCCM citizens.
The password manager matters for the threat narrative: "malicious programs
that attempt to capture sensitive data from the system clipboard, such as
passwords pasted from a password manager" (Section III-C) -- which is
exactly what the V-D spyware tries, and what the simulation's unprotected
machine loses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.apps.base import SimApp
from repro.xserver.input_drivers import KEYCODE_C, KEYCODE_V, MODIFIER_CTRL
from repro.xserver.window import Geometry

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import Machine


class TextEditor(SimApp):
    """A gedit-like editor."""

    default_geometry = Geometry(250, 250, 900, 600)

    def __init__(self, machine: "Machine", comm: str = "gedit", **kwargs) -> None:
        super().__init__(machine, f"/usr/bin/{comm}", comm=comm, **kwargs)
        self.buffer = b""

    def user_copy(self, data: bytes) -> None:
        """The user presses Ctrl+C; the editor claims the selection.

        The keystroke lands on this window (focus follows), producing the
        interaction notification the subsequent SetSelection needs.
        """
        self.focus()
        self.machine.keyboard.combo(KEYCODE_C, MODIFIER_CTRL)
        self.copy_text(data)

    def user_paste(self) -> Optional[bytes]:
        """The user presses Ctrl+V; the editor requests the selection."""
        self.focus()
        self.machine.keyboard.combo(KEYCODE_V, MODIFIER_CTRL)
        data = self.paste_text()
        if data is not None:
            self.buffer += data
        return data


class PasswordManager(SimApp):
    """A KeePass-like vault that copies credentials to the clipboard."""

    default_geometry = Geometry(800, 150, 500, 400)

    def __init__(self, machine: "Machine", comm: str = "keepass", **kwargs) -> None:
        super().__init__(machine, f"/usr/bin/{comm}", comm=comm, **kwargs)
        self.vault: Dict[str, bytes] = {
            "bank": b"hunter2-bank-password",
            "email": b"correct-horse-battery-staple",
        }

    def user_copy_password(self, entry: str) -> bytes:
        """The user clicks the 'copy password' button for *entry*."""
        secret = self.vault[entry]
        self.click()
        self.copy_text(secret)
        return secret


class OfficeApp(TextEditor):
    """A LibreOffice-style document editor (same clipboard behaviour)."""

    default_geometry = Geometry(100, 50, 1100, 750)

    def __init__(self, machine: "Machine", comm: str = "libreoffice", **kwargs) -> None:
        super().__init__(machine, comm=comm, **kwargs)


class ClipboardHistoryTool(SimApp):
    """A clipboard-manager utility that polls the selection.

    Legitimate clipboard managers *do* read the clipboard without fresh
    user input -- under Overhaul they only succeed right after real copy
    activity, which is the paper's accepted behaviour change for this app
    class (clipboard accesses are logged, never alerted).
    """

    default_geometry = Geometry(1500, 50, 300, 500)

    def __init__(self, machine: "Machine", comm: str = "clipman", **kwargs) -> None:
        super().__init__(machine, f"/usr/bin/{comm}", comm=comm, **kwargs)
        self.history: List[bytes] = []
        self.denied_polls = 0

    def poll_clipboard(self) -> Optional[bytes]:
        """Try to read the clipboard; record denials instead of raising."""
        from repro.xserver.errors import BadAccess

        try:
            data = self.paste_text()
        except BadAccess:
            self.denied_polls += 1
            return None
        if data is not None:
            self.history.append(data)
        return data
