"""Audio/video capture applications (Audacity, Cheese, arecord, ...).

These cover the remaining V-C application classes: GUI audio editors and
recorders, webcam viewers, and their command-line counterparts (which reach
the devices through the terminal/pty path of :mod:`repro.apps.terminal`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.apps.base import SimApp
from repro.kernel.task import Task
from repro.kernel.vfs import OpenMode
from repro.xserver.window import Geometry

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import Machine


class AudioRecorder(SimApp):
    """An Audacity-like GUI recorder."""

    default_geometry = Geometry(150, 350, 850, 550)

    def __init__(self, machine: "Machine", comm: str = "audacity", **kwargs) -> None:
        super().__init__(machine, f"/usr/bin/{comm}", comm=comm, **kwargs)
        self.recordings: List[bytes] = []
        self._mic_fd: Optional[int] = None

    def start_recording(self) -> None:
        """Open the microphone (caller must have delivered the user input)."""
        self._mic_fd = self.open_device("mic0")

    def click_record(self) -> None:
        """The user clicks the record button; recording starts."""
        self.click()
        self.start_recording()

    def capture_samples(self, count: int = 2048) -> bytes:
        if self._mic_fd is None:
            raise RuntimeError("not recording")
        samples = self.read_device(self._mic_fd, count)
        self.recordings.append(samples)
        return samples

    def stop_recording(self) -> None:
        if self._mic_fd is not None:
            self.close_fd(self._mic_fd)
            self._mic_fd = None


class WebcamViewer(SimApp):
    """A Cheese-like webcam application."""

    default_geometry = Geometry(400, 300, 640, 520)

    def __init__(self, machine: "Machine", comm: str = "cheese", **kwargs) -> None:
        super().__init__(machine, f"/usr/bin/{comm}", comm=comm, **kwargs)
        self.frames: List[bytes] = []

    def click_and_view(self, frames: int = 3) -> List[bytes]:
        """User opens the camera view; the app streams a few frames."""
        self.click()
        fd = self.open_device("video0")
        try:
            for _ in range(frames):
                self.frames.append(self.read_device(fd, 512))
        finally:
            self.close_fd(fd)
        return self.frames


class CommandLineRecorder:
    """An arecord-like CLI tool: a plain task, no X connection.

    Launched by a shell (see :class:`repro.apps.terminal.TerminalEmulator`);
    its interaction provenance arrives purely via pty propagation + P1.
    """

    def __init__(self, machine: "Machine", task: Task) -> None:
        self.machine = machine
        self.task = task
        self.samples: List[bytes] = []

    def record_once(self, device_name: str = "mic0", count: int = 1024) -> bytes:
        """Open the device, sample, close."""
        kernel = self.machine.kernel
        fd = kernel.sys_open(self.task, kernel.device_path(device_name), OpenMode.READ)
        try:
            data = kernel.sys_read(self.task, fd, count)
        finally:
            kernel.sys_close(self.task, fd)
        self.samples.append(data)
        return data
