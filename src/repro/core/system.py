"""Top-level assembly: a simulated machine, optionally protected by Overhaul.

:class:`Machine` is the public entry point of the whole reproduction:

>>> from repro.core import Machine, paper_config
>>> protected = Machine.with_overhaul()          # patched kernel + X server
>>> baseline = Machine.baseline()                # unmodified system

A machine owns one event scheduler, one kernel, one X server (running as a
superuser task of that kernel, so the netlink authentication is real), and
the physical input devices.  :class:`OverhaulSystem` performs the paper's
installation steps: install the permission monitor into the kernel, connect
the display manager's netlink channel, patch the X server with the
:class:`~repro.core.display_manager.DisplayManagerExtension`, and apply the
configuration (delta, wait-list duration, ptrace hardening, alert policy).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.kernel.credentials import DEFAULT_USER, ROOT, Credentials
from repro.kernel.device import DeviceInventory
from repro.kernel.kernel import Kernel
from repro.kernel.netlink import DISPLAY_MANAGER_PATH
from repro.kernel.task import Task
from repro.core.config import OverhaulConfig, paper_config
from repro.core.display_manager import DisplayManagerExtension
from repro.core.permission_monitor import PermissionMonitor
from repro.obs.tracer import Tracer
from repro.sim.scheduler import EventScheduler
from repro.sim.time import Timestamp, from_seconds
from repro.xserver.client import XClient
from repro.xserver.input_drivers import HardwareKeyboard, HardwareMouse
from repro.xserver.server import XServer


class OverhaulSystem:
    """The installed Overhaul stack on one machine."""

    def __init__(self, machine: "Machine", config: OverhaulConfig) -> None:
        config.validate()
        self.config = config
        kernel = machine.kernel
        xserver = machine.xserver

        # Kernel side: the permission monitor and its netlink handlers.
        self.monitor = PermissionMonitor(kernel, config)
        self.monitor.install()
        kernel.install_permission_monitor(self.monitor)
        kernel.shm.waitlist_duration = config.shm_waitlist
        kernel.ptrace.protection_enabled = config.ptrace_protection
        # Hot-path switches (each fast path is observably equivalent to the
        # reference path; see docs/performance.md).
        kernel.netlink.fast_path = config.fast_netlink
        kernel.device_mediator.use_deferred_audit = config.fast_audit_batch

        # Display-manager side: authenticated channel + the X patch.
        self.channel = kernel.netlink.connect(machine.xserver_task)
        machine.xserver_task.is_display_manager = True
        xserver.overlay.shared_secret = config.shared_secret
        xserver.overlay.alert_duration = config.alert_duration
        # Damage-tracked display pipeline: like the kernel-side fast paths,
        # prompt mode and gray-box route everything through the reference
        # path (the prompt band composites above the stack and gray-box
        # hangs extra state off the input path).
        fast_display = (
            config.fast_display
            and not config.prompt_mode
            and not config.graybox_enabled
        )
        xserver.fast_display = fast_display
        xserver.fast_numpy_blit = config.fast_numpy_blit
        xserver.overlay.fast_banner_cache = fast_display
        self.extension = DisplayManagerExtension(
            xserver, machine.xserver_task, self.channel, config
        )

        # Optional prompt mode (Section IV-A's verified extension).
        if config.prompt_mode:
            from repro.core.prompt_mode import PromptManager

            self.extension.prompt_manager = PromptManager(
                xserver, machine.xserver_task, self.channel, config
            )

    def __repr__(self) -> str:
        return (
            f"OverhaulSystem(delta={self.config.interaction_threshold} us, "
            f"decisions={len(self.monitor.decisions)})"
        )


class Machine:
    """A complete simulated desktop machine."""

    def __init__(
        self,
        overhaul_config: Optional[OverhaulConfig] = None,
        scheduler: Optional[EventScheduler] = None,
        inventory: Optional[DeviceInventory] = None,
        name: str = "machine",
        trace: bool = False,
        screen_size: Optional[Tuple[int, int]] = None,
    ) -> None:
        self.name = name
        self.scheduler = scheduler if scheduler is not None else EventScheduler()
        # One tracer spans all four layers so kernel-side spans nest under
        # the X-server/netlink spans that caused them.  Disabled by default:
        # every instrumentation site checks `tracer.enabled` first, keeping
        # the Table I hot paths untouched.
        self.tracer = Tracer(lambda: self.scheduler.now, enabled=trace)
        self.kernel = Kernel(self.scheduler, inventory, tracer=self.tracer)

        # The display manager runs as a real superuser task executing the
        # trusted X binary -- which is what the netlink authentication
        # later verifies by memory-map introspection.
        self.xserver_task = self.kernel.sys_spawn(
            self.kernel.process_table.init, DISPLAY_MANAGER_PATH, comm="Xorg", creds=ROOT
        )
        # The screen: 1920x1080 by default; benchmark rigs and heavy
        # differential tests pass a small ``screen_size`` so per-frame
        # work measures the mechanism under test, not framebuffer memcpy.
        width, height = screen_size if screen_size is not None else (1920, 1080)
        self.xserver = XServer(self.scheduler, width=width, height=height, tracer=self.tracer)
        self.keyboard = HardwareKeyboard(self.xserver)
        self.mouse = HardwareMouse(self.xserver)

        self.overhaul: Optional[OverhaulSystem] = None
        if overhaul_config is not None:
            self.overhaul = OverhaulSystem(self, overhaul_config)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def with_overhaul(
        cls,
        config: Optional[OverhaulConfig] = None,
        inventory: Optional[DeviceInventory] = None,
        name: str = "protected",
        trace: bool = False,
        screen_size: Optional[Tuple[int, int]] = None,
    ) -> "Machine":
        """A machine running the Overhaul-patched kernel and X server."""
        return cls(
            overhaul_config=config if config is not None else paper_config(),
            inventory=inventory,
            name=name,
            trace=trace,
            screen_size=screen_size,
        )

    @classmethod
    def baseline(
        cls,
        inventory: Optional[DeviceInventory] = None,
        name: str = "baseline",
        trace: bool = False,
        screen_size: Optional[Tuple[int, int]] = None,
    ) -> "Machine":
        """An unmodified machine (the Table I baseline / V-D control)."""
        return cls(
            overhaul_config=None,
            inventory=inventory,
            name=name,
            trace=trace,
            screen_size=screen_size,
        )

    # -- properties -------------------------------------------------------------

    @property
    def protected(self) -> bool:
        """True when Overhaul is installed."""
        return self.overhaul is not None

    @property
    def now(self) -> Timestamp:
        return self.scheduler.now

    @property
    def monitor(self) -> Optional[PermissionMonitor]:
        """The permission monitor, when Overhaul is installed."""
        return self.overhaul.monitor if self.overhaul is not None else None

    # -- process/application helpers -----------------------------------------------

    def launch(
        self,
        exe_path: str,
        comm: Optional[str] = None,
        creds: Credentials = DEFAULT_USER,
        parent: Optional[Task] = None,
        connect_x: bool = True,
    ) -> Tuple[Task, Optional[XClient]]:
        """Start a process (optionally an X client).

        Programs are launched from init by default -- i.e. *without* any
        interaction provenance, like a program started by the session
        manager at login.  Interactive launches (Figure 3) instead go
        through an application's own fork/exec so P1 applies.
        """
        parent_task = parent if parent is not None else self.kernel.process_table.init
        task = self.kernel.sys_spawn(parent_task, exe_path, comm, creds)
        client = self.xserver.connect(task) if connect_x else None
        return task, client

    # -- time helpers ------------------------------------------------------------------

    def run_for(self, duration: Timestamp) -> int:
        """Advance simulated time by *duration*."""
        return self.scheduler.run_for(duration)

    def run_for_seconds(self, seconds: float) -> int:
        """Advance simulated time by *seconds*."""
        return self.scheduler.run_for(from_seconds(seconds))

    def settle(self) -> int:
        """Let the machine idle long enough for fresh windows to satisfy
        the clickjacking visibility threshold (plus margin)."""
        if self.overhaul is not None:
            margin = self.overhaul.config.window_visibility_threshold * 2
        else:
            margin = from_seconds(2.0)
        return self.scheduler.run_for(margin)

    def __repr__(self) -> str:
        mode = "overhaul" if self.protected else "baseline"
        return f"Machine(name={self.name!r}, {mode}, now={self.now})"
