"""Overhaul itself: input-driven access control (the paper's contribution).

The pieces map one-to-one onto Section III's architecture:

- :class:`~repro.core.config.OverhaulConfig` -- every tunable with the
  paper's values as defaults (delta = 2 s, shm wait list = 500 ms, ...).
- :class:`~repro.core.permission_monitor.PermissionMonitor` -- the kernel
  component: interaction records in the task_struct, the temporal-proximity
  decision rule, permission queries, alert requests.
- :class:`~repro.core.display_manager.DisplayManagerExtension` -- the X
  server patch: trusted input (provenance filtering + clickjack visibility
  checks), display-resource queries, trusted overlay output.
- :class:`~repro.core.system.Machine` / ``OverhaulSystem`` -- assembly of a
  protected (or baseline) simulated desktop.

Quickstart::

    from repro.core import Machine
    machine = Machine.with_overhaul()
"""

from repro.core.config import (
    OverhaulConfig,
    benchmark_config,
    paper_config,
    reference_config,
)
from repro.core.display_manager import DisplayManagerExtension, SuppressedInteraction
from repro.core.notifications import (
    MSG_INTERACTION,
    MSG_PERMISSION_QUERY,
    MSG_VISUAL_ALERT,
    InteractionNotification,
    PermissionQuery,
    PermissionResponse,
    VisualAlertRequest,
)
from repro.core.graybox import (
    GrayBoxRegistry,
    InputDescriptor,
    IntentProfile,
    IntentProfileLearner,
    IntentRule,
    Region,
)
from repro.core.permission_monitor import Decision, PermissionMonitor
from repro.core.prompt_mode import (
    MSG_PROMPT_REQUEST,
    MSG_PROMPT_RESPONSE,
    PromptArbiter,
    PromptManager,
    PromptRequest,
)
from repro.core.system import Machine, OverhaulSystem

__all__ = [
    "Decision",
    "DisplayManagerExtension",
    "GrayBoxRegistry",
    "InputDescriptor",
    "IntentProfile",
    "IntentProfileLearner",
    "IntentRule",
    "InteractionNotification",
    "MSG_INTERACTION",
    "MSG_PERMISSION_QUERY",
    "MSG_PROMPT_REQUEST",
    "MSG_PROMPT_RESPONSE",
    "MSG_VISUAL_ALERT",
    "Machine",
    "OverhaulConfig",
    "OverhaulSystem",
    "PermissionMonitor",
    "PermissionQuery",
    "PermissionResponse",
    "PromptArbiter",
    "PromptManager",
    "PromptRequest",
    "Region",
    "SuppressedInteraction",
    "VisualAlertRequest",
    "benchmark_config",
    "paper_config",
    "reference_config",
]
