"""Overhaul configuration.

Every tunable the paper mentions, with the paper's values as defaults:

- ``interaction_threshold`` (delta): "setting a threshold of less than
  1 second could lead to falsely revoked permissions, but 2 seconds is
  sufficient" (Section IV-B) -> 2 s.
- ``shm_waitlist``: "We configured this duration to 500 ms, which yielded a
  good performance-usability trade-off" -> 500 ms.  Must be "sufficiently
  shorter than the 2 second interaction expiration time"; validated.
- ``window_visibility_threshold``: the clickjacking defence requires the
  event's target window to have "stayed visible above a predefined time
  threshold"; the paper gives no number, so we default to 1 s and expose it
  for the ablation experiments.
- ``alert_duration``: alerts show "for a few seconds" -> 3 s.
- ``force_grant``: the evaluation mode where the monitor grants everything
  while still executing the full decision path (Section V-A methodology).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.errors import SimulationError
from repro.sim.time import Timestamp, from_millis, from_seconds


@dataclass
class OverhaulConfig:
    """All Overhaul tunables, in simulated microseconds."""

    #: delta -- maximum age of the last interaction for a grant.
    interaction_threshold: Timestamp = from_seconds(2.0)
    #: Shared-memory wait-list duration before re-revocation.
    shm_waitlist: Timestamp = from_millis(500)
    #: Minimum continuous window visibility before interactions count.
    window_visibility_threshold: Timestamp = from_seconds(1.0)
    #: How long overlay alerts stay on screen.
    alert_duration: Timestamp = from_seconds(3.0)
    #: The user's visual shared secret (Figure 5's cat image).
    shared_secret: str = "visual-secret:cat.png"
    #: ptrace hardening (permissions revoked for traced processes).
    ptrace_protection: bool = True
    #: Benchmark mode: decide as usual, then grant regardless.
    force_grant: bool = False
    #: Display alerts for granted device accesses (S4).
    alert_on_device_grant: bool = True
    #: Display alerts for *blocked* accesses (the V-B study's blocked-camera
    #: alert).
    alert_on_denial: bool = True
    #: Display alerts for screen captures (the display manager can identify
    #: the requestor itself, no kernel round trip needed).
    alert_on_screen_capture: bool = True
    #: Clipboard operations are logged but never alerted -- "OVERHAUL does
    #: not display alerts for clipboard accesses due to usability reasons"
    #: (Section V-C).
    alert_on_clipboard: bool = False
    #: The verified-but-unexplored prompt mode of Section IV-A: failed
    #: temporal checks raise an unforgeable prompt on the trusted output
    #: path; the user's hardware click on it grants or denies the specific
    #: (process, operation) for one threshold window.
    prompt_mode: bool = False
    #: The Section VII future-work direction: gray-box intent correlation.
    #: Notifications carry input descriptors, and applications with an
    #: installed intent profile additionally require the blessing input to
    #: match the operation's intent rule.
    graybox_enabled: bool = False
    #: Bound on the permission monitor's epoch decision cache (entries die
    #: naturally with their epoch; the bound is a backstop against pid
    #: churn).  Multi-tenant deployments size this per tenant: a tenant
    #: hosting few processes can run a small cache, a busy one a large one,
    #: without either changing any decision -- the cache is observably
    #: equivalent to the reference path at every size >= 1.
    decision_cache_size: int = 4096

    # -- hot-path switches ---------------------------------------------------
    # Every fast path is observably equivalent to the reference path (the
    # differential property tests drive both and compare decision logs,
    # audit records, and counters byte for byte).  The switches exist so the
    # equivalence is *testable* and so a regression can be bisected to one
    # mechanism; production and benchmark configurations leave them on.

    #: Zero-copy netlink delivery for the dominant message types
    #: (payload-level handlers, pooled datagrams, batched flushes).
    fast_netlink: bool = True
    #: Memoize the per-pid ptrace verdict per (interaction_ts, ptrace
    #: version) epoch, making the delta-comparison pure integer arithmetic.
    fast_decision_cache: bool = True
    #: Batch audit-log appends (flushed on first read; retention window
    #: identical to eager appends).
    fast_audit_batch: bool = True
    #: Damage-tracked display pipeline: composition caching for root
    #: captures, zero-copy drawable snapshots for GetImage/CopyArea, the
    #: expiry-windowed overlay banner cache, and selection-transfer reuse
    #: for repeat pastes.  Forced off by tracing at call time and by
    #: prompt-mode / gray-box configurations at assembly time.
    fast_display: bool = True
    #: numpy-vectorized framebuffer blits on the fast display path.  Off
    #: in :func:`reference_config` (the reference composition is pure
    #: python) and moot wherever ``fast_display`` is off -- tracing and
    #: prompt/gray-box configurations already force the reference
    #: composition.  Degrades silently to the pure-python row loop when
    #: numpy (the ``repro[fast]`` extra) is not installed; the two
    #: produce byte-identical frames either way.
    fast_numpy_blit: bool = True

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check the cross-parameter constraints the paper states."""
        if self.interaction_threshold <= 0:
            raise SimulationError("interaction_threshold must be positive")
        if self.shm_waitlist < 0:
            raise SimulationError("shm_waitlist must be non-negative")
        if self.shm_waitlist >= self.interaction_threshold:
            raise SimulationError(
                "the shm wait-list duration must be sufficiently shorter than "
                f"the interaction threshold (got {self.shm_waitlist} >= "
                f"{self.interaction_threshold}); see Section IV-B"
            )
        if self.window_visibility_threshold < 0:
            raise SimulationError("window_visibility_threshold must be non-negative")
        if self.alert_duration <= 0:
            raise SimulationError("alert_duration must be positive")
        if (
            not isinstance(self.decision_cache_size, int)
            or isinstance(self.decision_cache_size, bool)
            or self.decision_cache_size < 1
        ):
            raise SimulationError(
                "decision_cache_size must be a positive integer "
                f"(got {self.decision_cache_size!r})"
            )


def paper_config() -> OverhaulConfig:
    """The exact configuration of the paper's prototype."""
    return OverhaulConfig()


def benchmark_config() -> OverhaulConfig:
    """The Section V-A measurement configuration: full path, forced grants."""
    return OverhaulConfig(force_grant=True)


def reference_config() -> OverhaulConfig:
    """The paper configuration with every hot-path optimisation disabled.

    Used by the differential equivalence tests as the ground truth the
    fast paths are compared against.
    """
    return OverhaulConfig(
        fast_netlink=False,
        fast_decision_cache=False,
        fast_audit_batch=False,
        fast_display=False,
        fast_numpy_blit=False,
    )
