"""The display-manager half of Overhaul (the "X server patch").

:class:`DisplayManagerExtension` implements the
:class:`repro.xserver.server.OverhaulXExtension` interface and is installed
into the X server by :class:`repro.core.system.OverhaulSystem`.  It provides:

- the **trusted input path** (Section IV-A): only hardware-provenance input
  events produce interaction notifications, and only when the receiving
  window passes the clickjacking visibility checks;
- the **permission queries** for display resources (clipboard operations and
  screen captures), sent to the kernel permission monitor over the
  authenticated netlink channel;
- the **trusted output path**: rendering overlay alerts, both for
  kernel-requested alerts (V_{A,op} for devices) and for screen captures the
  display manager itself mediates.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from repro.kernel.errors import KernelError
from repro.kernel.netlink import NetlinkChannel, NetlinkMessage
from repro.kernel.task import Task
from repro.core.config import OverhaulConfig
from repro.core.notifications import (
    MSG_INTERACTION,
    MSG_PERMISSION_QUERY,
    MSG_VISUAL_ALERT,
)
from repro.sim.time import Timestamp
from repro.xserver.client import XClient
from repro.xserver.events import EventKind, XEvent
from repro.xserver.server import XServer
from repro.xserver.window import Window


#: Query-payload pool bound (LRU-evicted).
_QUERY_POOL_LIMIT = 1024


@dataclass(frozen=True)
class SuppressedInteraction:
    """A hardware input whose notification was withheld (clickjack defence)."""

    pid: int
    window_id: int
    timestamp: Timestamp
    reason: str


class DisplayManagerExtension:
    """The Overhaul patch running inside the display manager process."""

    def __init__(
        self,
        xserver: XServer,
        xserver_task: Task,
        channel: NetlinkChannel,
        config: OverhaulConfig,
    ) -> None:
        self._xserver = xserver
        self._task = xserver_task
        self._channel = channel
        self.config = config

        channel.userspace_receiver = self._on_kernel_message
        xserver.overhaul = self

        #: Prompt-mode UI half, installed by OverhaulSystem when enabled.
        self.prompt_manager = None

        # Statistics the experiments read.
        self.notifications_sent = 0
        self.synthetic_inputs_seen = 0
        self.suppressed: List[SuppressedInteraction] = []
        self.queries_sent = 0
        self.alerts_displayed = 0
        self.channel_failures = 0
        #: Fast-display payload pool: Q_{A,t} datagrams keyed by
        #: (client, operation), refreshed with the current timestamp.  The
        #: kernel-side fast handler reads the payload without retaining it,
        #: so reuse is invisible to everything but the allocator.  Bounded
        #: by LRU eviction -- a machine cycling through many clients keeps
        #: its active ones pooled instead of freezing the pool at the
        #: first 1024 keys.
        self._query_payloads: "OrderedDict[tuple, dict]" = OrderedDict()

    # -- trusted input path ---------------------------------------------------

    def on_authentic_input(self, client: XClient, window: Window, event: XEvent) -> None:
        """A hardware input event reached *client*; maybe notify the kernel.

        The clickjacking defence (Section IV-A): notifications are only
        generated "if the X client receiving the event has a valid mapped
        window that has stayed visible above a predefined time threshold".
        A transparent overlay is not *visible* to the user at all, so it
        can never satisfy the check.
        """
        now = event.timestamp
        tracer = self._xserver.tracer
        if event.kind is EventKind.MOTION:
            # Pointer motion alone is not an intentional interaction with an
            # application -- only presses/releases/keys express user intent
            # (the paper's examples: clicking a button, a paste keystroke).
            return
        if window.transparent:
            self.suppressed.append(
                SuppressedInteraction(
                    client.pid, window.drawable_id, now, "transparent window"
                )
            )
            if tracer.enabled:
                tracer.event(
                    "input.suppress", "input",
                    pid=client.pid, window=window.drawable_id, reason="transparent window",
                )
            return
        if not window.mapped:
            self.suppressed.append(
                SuppressedInteraction(client.pid, window.drawable_id, now, "unmapped window")
            )
            if tracer.enabled:
                tracer.event(
                    "input.suppress", "input",
                    pid=client.pid, window=window.drawable_id, reason="unmapped window",
                )
            return
        if window.visible_duration(now) < self.config.window_visibility_threshold:
            self.suppressed.append(
                SuppressedInteraction(
                    client.pid,
                    window.drawable_id,
                    now,
                    f"visible only {window.visible_duration(now)} us",
                )
            )
            if tracer.enabled:
                tracer.event(
                    "input.suppress", "input",
                    pid=client.pid, window=window.drawable_id,
                    reason="below visibility threshold",
                )
            return
        # Step (2) of Figures 1-2: N_{A,t} over the secure channel.  A dead
        # channel (kernel restart of the link, teardown race) degrades to
        # fail-closed: the notification is lost, so the access it would
        # have justified stays denied.
        from repro.kernel.errors import KernelError

        payload = {"pid": client.pid, "timestamp": now}
        if self.config.graybox_enabled:
            # Gray-box enrichment (Section VII): describe the input so the
            # kernel can correlate intent, not just time.
            from repro.core.graybox import descriptor_from_event

            payload["descriptor"] = descriptor_from_event(event, window)
        span = None
        if tracer.enabled:
            span = tracer.start(
                "input.notify",
                "input",
                pid=client.pid,
                window=window.drawable_id,
                kind=event.kind.value,
                provenance=event.provenance.name,
                timestamp=now,
            )
        try:
            self._channel.send_to_kernel(self._task, MSG_INTERACTION, payload)
        except KernelError:
            self.channel_failures += 1
            return
        finally:
            if span is not None:
                tracer.finish(span)
        self.notifications_sent += 1

    def on_synthetic_input(
        self, client: XClient, window: Optional[Window], event: XEvent
    ) -> None:
        """A synthetic (SendEvent/XTest) input event was dispatched.

        It is delivered to the application (GUI testing keeps working) but
        filtered from the trusted input path: no notification is ever sent,
        which is the whole of security goal S2.
        """
        self.synthetic_inputs_seen += 1
        tracer = self._xserver.tracer
        if tracer.enabled:
            tracer.event(
                "input.filter",
                "input",
                pid=client.pid,
                kind=event.kind.value,
                provenance=event.provenance.name,
            )

    # -- display-resource permission queries -------------------------------------

    def _query(self, client: XClient, operation: str, now: Timestamp) -> bool:
        """Q_{A,t} -> R_{A,t} over the netlink channel.

        An unanswerable query (channel torn down) is a denial: the display
        manager never fails open.
        """
        self.queries_sent += 1
        xserver = self._xserver
        if (
            xserver.fast_display
            and not xserver.tracer.enabled
            and xserver.prompt_interceptor is None
        ):
            pool = self._query_payloads
            key = (client.client_id, operation)
            payload = pool.get(key)
            if payload is None:
                payload = {"pid": client.pid, "operation": operation, "timestamp": now}
                pool[key] = payload
                if len(pool) > _QUERY_POOL_LIMIT:
                    pool.popitem(last=False)
            else:
                payload["timestamp"] = now
                pool.move_to_end(key)
        else:
            payload = {"pid": client.pid, "operation": operation, "timestamp": now}
        try:
            response = self._channel.send_to_kernel(
                self._task, MSG_PERMISSION_QUERY, payload
            )
        except KernelError:
            self.channel_failures += 1
            return False
        return bool(response["granted"])

    def authorize_selection_op(self, client: XClient, operation: str, now: Timestamp) -> bool:
        """Clipboard copy/paste gate (Figure 2 steps 5-6).

        No alerts for clipboard operations -- logged by the kernel monitor
        only (Section V-C's usability rationale).
        """
        return self._query(client, operation, now)

    def authorize_screen_capture(self, client: XClient, now: Timestamp) -> bool:
        """Screen-content gate.

        The display manager can identify the requesting process itself here
        (no kernel-initiated V_{A,op} needed), so it renders the alert
        directly on grant or denial.
        """
        granted = self._query(client, "screen", now)
        if granted and self.config.alert_on_screen_capture:
            self._display_alert(client.pid, client.comm, "screen", blocked=False)
        elif not granted and self.config.alert_on_denial:
            self._display_alert(client.pid, client.comm, "screen", blocked=True)
        return granted

    # -- trusted output path ---------------------------------------------------------

    def _display_alert(self, pid: int, comm: str, operation: str, blocked: bool) -> None:
        if blocked:
            message = f"BLOCKED: '{comm}' tried to access the {operation}"
        else:
            message = f"'{comm}' is accessing the {operation}"
        self._xserver.display_alert(message, operation, pid, comm)
        self.alerts_displayed += 1

    def _on_kernel_message(self, message: NetlinkMessage) -> None:
        """Kernel -> display manager traffic (alerts, prompt requests)."""
        if message.msg_type == MSG_VISUAL_ALERT:
            payload = message.payload
            self._display_alert(
                pid=payload["pid"],
                comm=payload["comm"],
                operation=payload["operation"],
                blocked=payload["blocked"],
            )
            return
        from repro.core.prompt_mode import MSG_PROMPT_REQUEST

        if message.msg_type == MSG_PROMPT_REQUEST and self.prompt_manager is not None:
            self.prompt_manager.on_prompt_request(message)
