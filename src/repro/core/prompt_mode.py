"""Prompt mode: explicit user-driven decisions on the trusted paths.

Section IV-A: "we have implemented and verified that OVERHAUL's security
primitives can be used to support such a security model in a trivial
manner, where the trusted output path would be used for displaying an
unforgeable prompt, and the trusted input path to verify user interaction
with it.  However... popup prompts have severe usability issues... We do
not explore the popup prompt approach further in this paper."

This module is that verified-but-unexplored mode, reproduced:

- When a temporal-proximity check fails and ``OverhaulConfig.prompt_mode``
  is on, the permission monitor posts a *prompt request* to the display
  manager over the secure channel instead of silently denying forever.
- The display manager renders the prompt in the overlay layer (trusted
  output: above all windows, carrying the visual shared secret, not
  drawable by clients).
- The user answers by clicking the prompt's Approve/Deny regions with a
  *hardware* pointer.  The prompt band sits outside the window stack, so
  synthetic input (SendEvent, XTest) physically cannot reach it -- the
  trusted input path verifies the response.
- An approval is recorded kernel-side for exactly (pid, operation) and
  expires after delta, whereupon the application's retry of the failed
  call succeeds.  Denials are likewise remembered so the app's retries do
  not re-prompt within the window.

Failed mediated calls still return EACCES immediately (the simulation's
syscalls are synchronous); applications retry after the user answers --
the retry-after-grant idiom real prompt-augmented daemons use.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.config import OverhaulConfig
from repro.kernel.netlink import NetlinkChannel, NetlinkMessage
from repro.kernel.task import Task
from repro.sim.time import Timestamp

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.permission_monitor import PermissionMonitor
    from repro.xserver.server import XServer

#: netlink message types for the prompt round trip.
MSG_PROMPT_REQUEST = "overhaul.prompt-request"  # kernel -> display manager
MSG_PROMPT_RESPONSE = "overhaul.prompt-response"  # display manager -> kernel

#: Screen band reserved for the prompt (same strip alerts use).
PROMPT_BAND_HEIGHT = 48
#: x >= this within the band means Deny; below means Approve.
PROMPT_DENY_SPLIT_FRACTION = 0.5

_prompt_ids = itertools.count(1)


@dataclass
class PromptRequest:
    """One pending question to the user."""

    prompt_id: int
    pid: int
    comm: str
    operation: str
    posted_at: Timestamp
    shared_secret: str

    def render(self) -> str:
        """The prompt text as composited into the overlay band."""
        return (
            f"PROMPT[{self.shared_secret}] allow '{self.comm}' to access "
            f"{self.operation}? [Approve|Deny]"
        )


class PromptManager:
    """The display-manager half: renders prompts, verifies responses.

    Installed by :class:`repro.core.system.OverhaulSystem` when
    ``config.prompt_mode`` is set.  It registers itself as the X server's
    hardware-click interceptor for the prompt band -- a path only the
    hardware input drivers can enter.
    """

    def __init__(
        self,
        xserver: "XServer",
        xserver_task: Task,
        channel: NetlinkChannel,
        config: OverhaulConfig,
    ) -> None:
        self._xserver = xserver
        self._task = xserver_task
        self._channel = channel
        self.config = config
        self.active: Optional[PromptRequest] = None
        self.queue: List[PromptRequest] = []
        self.prompts_shown = 0
        self.responses_sent = 0
        self.synthetic_response_attempts = 0
        xserver.prompt_interceptor = self

    # -- posting ------------------------------------------------------------

    def on_prompt_request(self, message: NetlinkMessage) -> None:
        """Kernel asked us to put a question to the user."""
        payload = message.payload
        request = PromptRequest(
            prompt_id=payload["prompt_id"],
            pid=payload["pid"],
            comm=payload["comm"],
            operation=payload["operation"],
            posted_at=message.timestamp,
            shared_secret=self._xserver.overlay.shared_secret,
        )
        if self.active is None:
            self.active = request
            self.prompts_shown += 1
        else:
            self.queue.append(request)

    def banner(self) -> bytes:
        """The prompt band contents (composited above everything)."""
        return self.active.render().encode() if self.active is not None else b""

    # -- the trusted-input response path ---------------------------------------

    def approve_region(self) -> Tuple[int, int, int, int]:
        """(x0, y0, x1, y1) of the Approve button, in root coordinates."""
        split = int(self._xserver.width * PROMPT_DENY_SPLIT_FRACTION)
        return (0, 0, split, PROMPT_BAND_HEIGHT)

    def deny_region(self) -> Tuple[int, int, int, int]:
        split = int(self._xserver.width * PROMPT_DENY_SPLIT_FRACTION)
        return (split, 0, self._xserver.width, PROMPT_BAND_HEIGHT)

    def intercept_hardware_click(self, x: int, y: int, timestamp: Timestamp) -> bool:
        """Called by the X server for *hardware* button presses only.

        Returns True when the click was consumed by the prompt band.
        Synthetic events never reach this method: SendEvent/XTest routing
        goes through the window stack, and the band is not a window.
        """
        if self.active is None or y >= PROMPT_BAND_HEIGHT:
            return False
        split = int(self._xserver.width * PROMPT_DENY_SPLIT_FRACTION)
        self._respond(approved=x < split, timestamp=timestamp)
        return True

    def _respond(self, approved: bool, timestamp: Timestamp) -> None:
        request = self.active
        assert request is not None
        self._channel.send_to_kernel(
            self._task,
            MSG_PROMPT_RESPONSE,
            {
                "prompt_id": request.prompt_id,
                "pid": request.pid,
                "operation": request.operation,
                "approved": approved,
                "timestamp": timestamp,
            },
        )
        self.responses_sent += 1
        self.active = self.queue.pop(0) if self.queue else None
        if self.active is not None:
            self.prompts_shown += 1


class PromptArbiter:
    """The kernel half: posts prompts, records verified answers.

    Owned by the :class:`PermissionMonitor`; consulted from its decision
    path.  Approvals and denials are scoped to (pid, operation) and expire
    after the interaction threshold -- the same temporal discipline as
    ordinary interactions.
    """

    def __init__(self, monitor: "PermissionMonitor") -> None:
        self._monitor = monitor
        self._kernel = monitor._kernel
        #: (pid, operation) -> (approved, response timestamp)
        self._answers: Dict[Tuple[int, str], Tuple[bool, Timestamp]] = {}
        #: (pid, operation) -> posted_at for outstanding prompts
        self._outstanding: Dict[Tuple[int, str], Timestamp] = {}
        self.prompts_posted = 0
        self.approvals = 0
        self.denials = 0

    def install(self) -> None:
        self._kernel.netlink.register_kernel_handler(
            MSG_PROMPT_RESPONSE, self._handle_response
        )

    # -- decision-path hooks -------------------------------------------------------

    def check_answer(self, task: Task, operation: str, now: Timestamp) -> Optional[bool]:
        """A recorded, unexpired answer for (task, operation), if any."""
        answer = self._answers.get((task.pid, operation))
        if answer is None:
            return None
        approved, answered_at = answer
        if now - answered_at >= self._monitor.config.interaction_threshold:
            del self._answers[(task.pid, operation)]
            return None
        return approved

    def post_prompt(self, task: Task, operation: str, now: Timestamp) -> None:
        """Ask the display manager to prompt (once per outstanding question)."""
        key = (task.pid, operation)
        if key in self._outstanding:
            return
        channel = self._kernel.netlink.channel_for("display-manager")
        if channel is None:
            return  # headless: stay fail-closed, no prompt possible
        self._outstanding[key] = now
        prompt_id = next(_prompt_ids)
        channel.send_to_userspace(
            MSG_PROMPT_REQUEST,
            {
                "prompt_id": prompt_id,
                "pid": task.pid,
                "comm": task.comm,
                "operation": operation,
            },
        )
        self.prompts_posted += 1

    # -- kernel handler ----------------------------------------------------------------

    def _handle_response(self, channel: NetlinkChannel, message: NetlinkMessage) -> None:
        if channel.label != "display-manager":
            from repro.kernel.errors import OperationNotPermitted

            raise OperationNotPermitted(
                "prompt responses accepted only from the display manager"
            )
        payload = message.payload
        key = (payload["pid"], payload["operation"])
        self._outstanding.pop(key, None)
        self._answers[key] = (payload["approved"], payload["timestamp"])
        if payload["approved"]:
            self.approvals += 1
        else:
            self.denials += 1
