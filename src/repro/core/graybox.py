"""Gray-box intent correlation: the paper's future-work direction.

Section VII: "we plan to investigate gray-box approaches to input-driven
access control that close the gap between white-box approaches [ACGs] that
require applications to be written with user-driven access control and the
black-box approach adopted here.  One promising direction is to leverage
static and dynamic program analyses to more precisely link user intent,
user input, and device accesses, all without requiring modifications to
existing programs."

This module prototypes that direction.  The black-box gap (demonstrated by
``tests/integration/test_limitations.py::TestWeakerThanACGs``) is that *any*
recent input blesses *any* operation.  The gray-box extension narrows it:

- Interaction notifications are enriched with an **input descriptor** --
  the event kind, the window-relative coordinates of a click, or the
  keycode of a key press.  Applications stay unmodified; the descriptor is
  computed entirely in the display manager.
- An **intent profile** per application (the artifact a program analysis
  would produce: "this binary's microphone use is reached from the
  call-button click handler") maps each sensitive operation to the input
  regions/keys that express intent for it.
- The permission monitor's decision gains a second conjunct: temporal
  proximity **and** intent match.  Applications without a profile keep the
  pure black-box behaviour, so the extension is incrementally deployable.

Profiles can be authored directly or *learned* (the dynamic-analysis
flavour): :class:`IntentProfileLearner` observes which inputs immediately
precede which operations during a trusted training window and emits the
profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.time import Timestamp
from repro.xserver.events import EventKind


@dataclass(frozen=True)
class InputDescriptor:
    """What the user actually did, as recorded with the notification."""

    kind: str  # "button" | "key"
    window_x: int = -1  # window-relative click position
    window_y: int = -1
    keycode: int = -1


@dataclass(frozen=True)
class Region:
    """A window-relative rectangle (an intent-bearing UI control)."""

    x0: int
    y0: int
    x1: int
    y1: int

    def contains(self, x: int, y: int) -> bool:
        return self.x0 <= x < self.x1 and self.y0 <= y < self.y1


@dataclass
class IntentRule:
    """Inputs that express intent for one operation."""

    regions: List[Region] = field(default_factory=list)
    keycodes: List[int] = field(default_factory=list)

    def matches(self, descriptor: InputDescriptor) -> bool:
        if descriptor.kind == "button":
            return any(r.contains(descriptor.window_x, descriptor.window_y) for r in self.regions)
        if descriptor.kind == "key":
            return descriptor.keycode in self.keycodes
        return False


class IntentProfile:
    """The per-application artifact of the (simulated) program analysis."""

    def __init__(self, comm: str) -> None:
        self.comm = comm
        self._rules: Dict[str, IntentRule] = {}

    def allow_region(self, operation_prefix: str, region: Region) -> "IntentProfile":
        self._rules.setdefault(operation_prefix, IntentRule()).regions.append(region)
        return self

    def allow_keycode(self, operation_prefix: str, keycode: int) -> "IntentProfile":
        self._rules.setdefault(operation_prefix, IntentRule()).keycodes.append(keycode)
        return self

    def rule_for(self, operation: str) -> Optional[IntentRule]:
        """Longest-prefix rule lookup (operations look like
        'microphone:/dev/mic0'; rules are usually keyed by class)."""
        best: Optional[IntentRule] = None
        best_len = -1
        for prefix, rule in self._rules.items():
            if operation.startswith(prefix) and len(prefix) > best_len:
                best, best_len = rule, len(prefix)
        return best

    def permits(self, operation: str, descriptor: Optional[InputDescriptor]) -> bool:
        """Does the recorded input express intent for *operation*?

        Operations with no rule are unconstrained (the profile only narrows
        what it knows about); operations with a rule require a matching
        descriptor.
        """
        rule = self.rule_for(operation)
        if rule is None:
            return True
        if descriptor is None:
            return False
        return rule.matches(descriptor)


class GrayBoxRegistry:
    """The kernel-side profile store consulted by the permission monitor."""

    def __init__(self) -> None:
        self._profiles: Dict[str, IntentProfile] = {}
        self.intent_denials = 0

    def install_profile(self, profile: IntentProfile) -> None:
        self._profiles[profile.comm] = profile

    def profile_for(self, comm: str) -> Optional[IntentProfile]:
        return self._profiles.get(comm)

    def check(self, comm: str, operation: str, descriptor: Optional[InputDescriptor]) -> bool:
        """True if the gray-box layer permits the operation.

        Applications without a profile fall back to pure black-box
        semantics (always permitted here; the temporal check still applies
        upstream).
        """
        profile = self._profiles.get(comm)
        if profile is None:
            return True
        allowed = profile.permits(operation, descriptor)
        if not allowed:
            self.intent_denials += 1
        return allowed


def descriptor_from_event(event, window) -> Optional[InputDescriptor]:
    """Build the enriched-notification descriptor in the display manager."""
    if event.kind in (EventKind.BUTTON_PRESS, EventKind.BUTTON_RELEASE):
        return InputDescriptor(
            kind="button",
            window_x=event.x - window.geometry.x,
            window_y=event.y - window.geometry.y,
        )
    if event.kind in (EventKind.KEY_PRESS, EventKind.KEY_RELEASE):
        return InputDescriptor(kind="key", keycode=event.detail if event.detail else -1)
    return None


@dataclass
class _Observation:
    descriptor: InputDescriptor
    timestamp: Timestamp


class IntentProfileLearner:
    """Dynamic-analysis stand-in: learn a profile from trusted traces.

    Feed it (input descriptor, time) pairs and (operation, time) pairs from
    a training session; every operation is attributed to the closest
    preceding input, and the learned profile allows exactly the observed
    (input, operation) pairs -- clicks generalise to a small rectangle
    around the observed point (a UI control, not a pixel).
    """

    CLICK_HALO = 24  # pixels around an observed click treated as the control

    def __init__(self, comm: str) -> None:
        self.comm = comm
        self._inputs: List[_Observation] = []
        self._attributions: List[Tuple[str, InputDescriptor]] = []

    def observe_input(self, descriptor: InputDescriptor, timestamp: Timestamp) -> None:
        self._inputs.append(_Observation(descriptor, timestamp))

    def observe_operation(self, operation: str, timestamp: Timestamp) -> None:
        preceding = [obs for obs in self._inputs if obs.timestamp <= timestamp]
        if not preceding:
            return
        closest = max(preceding, key=lambda obs: obs.timestamp)
        self._attributions.append((operation, closest.descriptor))

    def build_profile(self) -> IntentProfile:
        profile = IntentProfile(self.comm)
        for operation, descriptor in self._attributions:
            prefix = operation.split(":", 1)[0]
            if descriptor.kind == "button":
                halo = self.CLICK_HALO
                profile.allow_region(
                    prefix,
                    Region(
                        descriptor.window_x - halo,
                        descriptor.window_y - halo,
                        descriptor.window_x + halo,
                        descriptor.window_y + halo,
                    ),
                )
            elif descriptor.kind == "key":
                profile.allow_keycode(prefix, descriptor.keycode)
        return profile
