"""Message vocabulary of the Overhaul protocol.

Section III formalises the protocol objects; this module is their concrete
form plus the netlink message-type constants that carry them between the
display manager and the kernel permission monitor:

- ``N_{A,t}``  -> :class:`InteractionNotification`
- ``Q_{A,t}``  -> :class:`PermissionQuery`
- ``R_{A,t}``  -> :class:`PermissionResponse`
- ``V_{A,op}`` -> :class:`VisualAlertRequest`
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple, Optional

from repro.sim.time import Timestamp

#: netlink message types (userspace -> kernel unless noted).
MSG_INTERACTION = "overhaul.interaction-notification"
MSG_PERMISSION_QUERY = "overhaul.permission-query"
MSG_VISUAL_ALERT = "overhaul.visual-alert"  # kernel -> userspace


@dataclass(frozen=True)
class InteractionNotification:
    """N_{A,t}: application A received authentic user input at time t.

    Sent by the display manager to the kernel permission monitor every time
    a hardware input event is delivered to a legitimately-visible window.
    The pid is the kernel-verified identity of the receiving client.
    """

    pid: int
    timestamp: Timestamp


@dataclass(frozen=True)
class PermissionQuery:
    """Q_{A,t}: may application A perform *operation* at time t?

    Issued by the display manager for display-resource operations
    (clipboard, screen); issued internally by the kernel's device-mediation
    layer for hardware devices.
    """

    pid: int
    operation: str  # "copy" | "paste" | "screen" | "<device-class>:<path>"
    timestamp: Timestamp


class PermissionResponse(NamedTuple):
    """R_{A,t}: grant or deny, with the reasoning for the audit trail.

    A ``NamedTuple`` (not a frozen dataclass) because one is constructed
    per decision on the mediation hot path; tuple construction is several
    times cheaper than ``object.__setattr__``-per-field.
    """

    granted: bool
    reason: str
    interaction_age: Optional[Timestamp] = None  # age at decision time

    @property
    def as_payload(self) -> dict:
        return {
            "granted": self.granted,
            "reason": self.reason,
            "interaction_age": self.interaction_age,
        }


@dataclass(frozen=True)
class VisualAlertRequest:
    """V_{A,op}: ask the display manager to alert the user about A's op.

    Kernel-originated (Figure 1 step 6) because after IPC indirection only
    the kernel knows which process really accessed the resource.
    """

    pid: int
    comm: str
    operation: str
    blocked: bool  # False: access granted; True: access was blocked
