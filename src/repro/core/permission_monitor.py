"""The kernel permission monitor.

Section III-B: "The kernel keeps a history of these interaction
notifications, which include the identity of the application that received
the interaction and a timestamp, inside a *permission monitor*.  Once this
information is stored, the permission monitor can respond to permission
queries and adjustment requests... This decision process involves comparing
a timestamp issued together with the query with the stored interaction
timestamp corresponding to the target application, and in this way
correlating privileged operations with input events based on their temporal
proximity."

Storage follows Section IV-B exactly: the timestamp lives in the task's
``task_struct`` (:attr:`repro.kernel.task.Task.interaction_ts`), so P1
inheritance across fork is automatic and P2 propagation updates the same
field the decisions read.

The monitor also enforces the ptrace hardening (a traced task's permissions
are revoked) and implements the benchmark ``force_grant`` mode used for the
Table I methodology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

from repro.kernel.audit import AuditCategory, AuditDecision
from repro.kernel.errors import NoSuchProcess
from repro.kernel.netlink import NetlinkChannel, NetlinkMessage
from repro.kernel.task import Task
from repro.core.config import OverhaulConfig
from repro.core.notifications import (
    MSG_INTERACTION,
    MSG_PERMISSION_QUERY,
    MSG_VISUAL_ALERT,
    PermissionResponse,
)
from repro.sim.time import NEVER, Timestamp

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel


@dataclass(frozen=True)
class Decision:
    """One permission decision, for the monitor's decision log."""

    timestamp: Timestamp
    pid: int
    comm: str
    operation: str
    interaction_age: Timestamp
    granted: bool
    reason: str


def _category_for(operation: str) -> AuditCategory:
    """Map an operation string to its audit category."""
    if operation in ("copy", "paste"):
        return AuditCategory.CLIPBOARD
    if operation.startswith("screen"):
        return AuditCategory.SCREEN
    return AuditCategory.DEVICE


class PermissionMonitor:
    """The in-kernel decision engine."""

    #: Decision-log retention bound; grant/deny counters stay exact.
    DECISION_LOG_LIMIT = 100_000

    def __init__(self, kernel: "Kernel", config: OverhaulConfig) -> None:
        self._kernel = kernel
        self.config = config
        self.decisions: List[Decision] = []
        self.notifications_received = 0
        self.queries_answered = 0
        self.alerts_requested = 0
        self.grant_count = 0
        self.deny_count = 0
        #: Alert requests absorbed by the on-screen coalescing window.
        self.alerts_coalesced = 0
        #: (pid, operation, blocked) -> expiry of the alert on screen.
        self._alert_coalesce: dict = {}
        #: Prompt-mode arbiter (Section IV-A's verified extension).
        self.prompt_arbiter = None
        if config.prompt_mode:
            from repro.core.prompt_mode import PromptArbiter

            self.prompt_arbiter = PromptArbiter(self)
        #: Gray-box intent registry (Section VII's future-work direction).
        self.graybox = None
        if config.graybox_enabled:
            from repro.core.graybox import GrayBoxRegistry

            self.graybox = GrayBoxRegistry()

    # -- netlink wiring --------------------------------------------------------

    def install(self) -> None:
        """Register the monitor's message handlers on the kernel netlink."""
        netlink = self._kernel.netlink
        netlink.register_kernel_handler(MSG_INTERACTION, self._handle_interaction)
        netlink.register_kernel_handler(MSG_PERMISSION_QUERY, self._handle_query)
        if self.prompt_arbiter is not None:
            self.prompt_arbiter.install()

    def _require_display_manager(self, channel: NetlinkChannel) -> None:
        if channel.label != "display-manager":
            raise NoSuchProcess(
                f"permission-monitor messages accepted only from the display "
                f"manager channel, not {channel.label!r}"
            )

    def _handle_interaction(self, channel: NetlinkChannel, message: NetlinkMessage) -> None:
        """N_{A,t}: record the interaction in A's task_struct."""
        self._require_display_manager(channel)
        pid = message.payload["pid"]
        timestamp = message.payload["timestamp"]
        try:
            task = self._kernel.process_table.get_live(pid)
        except NoSuchProcess:
            return  # the client raced with its own exit; nothing to record
        task.record_interaction(timestamp)
        tracer = self._kernel.tracer
        if tracer.enabled:
            tracer.event(
                "monitor.record",
                "decision",
                pid=pid,
                timestamp=timestamp,
                interaction_ts=task.interaction_ts,
            )
        if "descriptor" in message.payload and timestamp >= task.interaction_ts:
            # Gray-box enrichment: remember what the blessing input was.
            # `>=` (not the merge result) so a same-instant newer event --
            # e.g. the press and release of one click -- refreshes the
            # descriptor to the latest input the user produced.
            descriptor = message.payload["descriptor"]
            if descriptor is not None:
                task.last_input_descriptor = descriptor
        self.notifications_received += 1

    def _handle_query(self, channel: NetlinkChannel, message: NetlinkMessage) -> dict:
        """Q_{A,t} -> R_{A,t}: answer a display-resource permission query."""
        self._require_display_manager(channel)
        pid = message.payload["pid"]
        operation = message.payload["operation"]
        timestamp = message.payload["timestamp"]
        try:
            task = self._kernel.process_table.get_live(pid)
        except NoSuchProcess:
            response = PermissionResponse(False, f"no such process {pid}")
            return response.as_payload
        response = self.decide(task, timestamp, operation)
        self.queries_answered += 1
        self._kernel.audit.record(
            timestamp=timestamp,
            category=_category_for(operation),
            decision=AuditDecision.GRANTED if response.granted else AuditDecision.DENIED,
            pid=pid,
            comm=task.comm,
            detail=operation,
        )
        return response.as_payload

    # -- the decision rule ---------------------------------------------------------

    def decide(self, task: Task, op_time: Timestamp, operation: str) -> PermissionResponse:
        """The temporal-proximity rule: grant iff ``0 <= n < delta``.

        ``n`` is the time between the task's most recent authentic
        interaction and the privileged operation.  Interactions *after* the
        operation never count (n < 0 is a deny), and ptrace'd tasks are
        denied outright when the hardening is on.
        """
        # Reasons are constant strings: the decision path is the hottest
        # code in the system (every mediated operation runs it), and the
        # age is stored alongside, so nothing is lost.
        age = task.interaction_age(op_time)
        tracer = self._kernel.tracer
        span = None
        if tracer.enabled:
            span = tracer.start(
                "monitor.decide",
                "decision",
                pid=task.pid,
                comm=task.comm,
                operation=operation,
                age=age,
                threshold=self.config.interaction_threshold,
            )
        if self._kernel.ptrace.permissions_disabled(task):
            granted = False
            reason = "permissions disabled: task is being traced"
        elif task.interaction_ts == NEVER:
            granted = False
            reason = "no user interaction on record"
        elif age < 0:
            granted = False
            reason = "interaction is in the operation's future"
        elif age < self.config.interaction_threshold:
            granted = True
            reason = "interaction within threshold"
            if self.graybox is not None and not self.graybox.check(
                task.comm, operation, task.last_input_descriptor
            ):
                # The gray-box conjunct: the blessing input must express
                # intent for *this* operation per the app's profile.
                granted = False
                reason = "gray-box: input does not express intent for this operation"
        else:
            granted = False
            reason = "interaction too old (age >= delta)"

        if (
            not granted
            and self.prompt_arbiter is not None
            and not self._kernel.ptrace.permissions_disabled(task)
        ):
            # Prompt mode: an unexpired user answer for this exact
            # (process, operation) overrides the temporal check; with no
            # answer on record, a prompt is raised and the call fails now
            # (the application retries after the user responds).
            answer = self.prompt_arbiter.check_answer(task, operation, op_time)
            if answer is True:
                granted = True
                reason = "user approved via trusted prompt"
            elif answer is False:
                reason = "user denied via trusted prompt"
            else:
                self.prompt_arbiter.post_prompt(task, operation, op_time)
                reason = "pending user prompt"

        if self.config.force_grant and not granted:
            # Benchmark methodology (Section V-A): the full decision path
            # ran; now override so the benchmarked operation proceeds.
            granted = True
            reason = "force_grant override"

        if granted:
            self.grant_count += 1
        else:
            self.deny_count += 1
        self.decisions.append(
            Decision(
                timestamp=op_time,
                pid=task.pid,
                comm=task.comm,
                operation=operation,
                interaction_age=age,
                granted=granted,
                reason=reason,
            )
        )
        if len(self.decisions) > self.DECISION_LOG_LIMIT:
            del self.decisions[: -self.DECISION_LOG_LIMIT // 2]
        if span is not None:
            tracer.finish(span, granted=granted, reason=reason)
        return PermissionResponse(granted, reason, interaction_age=age)

    # -- the Kernel-facing mediation interface ----------------------------------------

    def authorize(self, task: Task, now: Timestamp, operation: str) -> bool:
        """Device-mediation entry point (called from the augmented open)."""
        return self.decide(task, now, operation).granted

    def request_visual_alert(
        self, task: Task, operation: str, blocked: bool = False
    ) -> None:
        """V_{A,op}: ask the display manager (over netlink) to alert the user.

        Requests are coalesced: while an alert for the same (pid, op,
        outcome) is still on screen, re-requesting it would change nothing
        the user can see, so the kernel skips the netlink round trip.  A
        process hammering a device produces one alert per alert-duration
        window, not one per access -- which is also what keeps the alert
        path off the Table I hot loops.
        """
        if blocked and not self.config.alert_on_denial:
            return
        if not blocked and not self.config.alert_on_device_grant:
            return
        key = (task.pid, operation, blocked)
        now = self._kernel.now
        tracer = self._kernel.tracer
        expiry = self._alert_coalesce.get(key)
        if expiry is not None and now < expiry:
            self.alerts_coalesced += 1
            if tracer.enabled:
                tracer.event(
                    "alert.coalesce", "alert",
                    pid=task.pid, operation=operation, blocked=blocked,
                )
            return
        self._alert_coalesce[key] = now + self.config.alert_duration
        if len(self._alert_coalesce) > 4096:
            self._alert_coalesce = {
                k: v for k, v in self._alert_coalesce.items() if v > now
            }
        channel = self._kernel.netlink.channel_for("display-manager")
        if channel is None:
            return  # no display manager (headless boot); nothing to show
        if tracer.enabled:
            tracer.event(
                "alert.request", "alert",
                pid=task.pid, operation=operation, blocked=blocked,
            )
        channel.send_to_userspace(
            MSG_VISUAL_ALERT,
            {
                "pid": task.pid,
                "comm": task.comm,
                "operation": operation,
                "blocked": blocked,
            },
        )
        self.alerts_requested += 1

    # -- queries for experiments ---------------------------------------------------------

    def denied_decisions(self) -> List[Decision]:
        return [d for d in self.decisions if not d.granted]

    def granted_decisions(self) -> List[Decision]:
        return [d for d in self.decisions if d.granted]

    def decisions_for_pid(self, pid: int) -> List[Decision]:
        return [d for d in self.decisions if d.pid == pid]
