"""The kernel permission monitor.

Section III-B: "The kernel keeps a history of these interaction
notifications, which include the identity of the application that received
the interaction and a timestamp, inside a *permission monitor*.  Once this
information is stored, the permission monitor can respond to permission
queries and adjustment requests... This decision process involves comparing
a timestamp issued together with the query with the stored interaction
timestamp corresponding to the target application, and in this way
correlating privileged operations with input events based on their temporal
proximity."

Storage follows Section IV-B exactly: the timestamp lives in the task's
``task_struct`` (:attr:`repro.kernel.task.Task.interaction_ts`), so P1
inheritance across fork is automatic and P2 propagation updates the same
field the decisions read.

The monitor also enforces the ptrace hardening (a traced task's permissions
are revoked) and implements the benchmark ``force_grant`` mode used for the
Table I methodology.

Hot-path structure
------------------

Every mediated operation runs the decision rule, so the monitor carries two
implementations that must stay observably identical:

- :meth:`decide` is the reference path: tracer spans, a
  :class:`~repro.core.notifications.PermissionResponse` per call, eager
  audit appends.  It always runs when tracing is enabled (span-tree
  fidelity) or when the fast paths are toggled off.
- :meth:`_decide_core` is the fast core: no span plumbing, constant-string
  reasons, and a per-pid memo of the ptrace verdict keyed by the
  ``(interaction_ts, ptrace.version)`` epoch -- a new interaction, a fork
  (fresh pid; pids are never reused), or any trace-state change invalidates
  in O(1).  The fast netlink handlers (:meth:`_fast_handle_interaction`,
  :meth:`_fast_handle_query`) sit on top and skip datagram construction
  entirely.

Grant/deny counters, the decision log (contents, order, retention), and
audit records are byte-identical whichever path ran; the differential
property tests enforce that.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, NamedTuple, Tuple

from repro.kernel.audit import AuditCategory, AuditDecision
from repro.kernel.errors import NoSuchProcess
from repro.kernel.netlink import NetlinkChannel, NetlinkMessage
from repro.kernel.task import Task
from repro.core.config import OverhaulConfig
from repro.core.notifications import (
    MSG_INTERACTION,
    MSG_PERMISSION_QUERY,
    MSG_VISUAL_ALERT,
    PermissionResponse,
)
from repro.sim.time import NEVER, Timestamp

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel


class Decision(NamedTuple):
    """One permission decision, for the monitor's decision log.

    A ``NamedTuple``: one of these is appended per mediated operation, and
    tuple construction is the cheapest instantiation Python offers.
    """

    timestamp: Timestamp
    pid: int
    comm: str
    operation: str
    interaction_age: Timestamp
    granted: bool
    reason: str


#: operation string -> audit category, filled on first sight.  Operation
#: strings are drawn from a small set (clipboard verbs, screen verbs, one
#: string per sensitive device path), so the cache is naturally bounded;
#: the guard below is a backstop against adversarial operation churn.
_CATEGORY_CACHE: Dict[str, AuditCategory] = {}
_CATEGORY_CACHE_LIMIT = 4096


def _category_for(operation: str) -> AuditCategory:
    """Map an operation string to its audit category."""
    category = _CATEGORY_CACHE.get(operation)
    if category is None:
        if operation in ("copy", "paste"):
            category = AuditCategory.CLIPBOARD
        elif operation.startswith("screen"):
            category = AuditCategory.SCREEN
        else:
            category = AuditCategory.DEVICE
        if len(_CATEGORY_CACHE) >= _CATEGORY_CACHE_LIMIT:
            _CATEGORY_CACHE.clear()
        _CATEGORY_CACHE[operation] = category
    return category


#: Default decision-cache size backstop; entries die naturally with their
#: epoch, but a workload churning through pids could otherwise grow it
#: unbounded.  Tenants override per config (``decision_cache_size``).
_DECISION_CACHE_LIMIT = 4096


class PermissionMonitor:
    """The in-kernel decision engine."""

    #: Decision-log retention bound; grant/deny counters stay exact.
    DECISION_LOG_LIMIT = 100_000

    def __init__(self, kernel: "Kernel", config: OverhaulConfig) -> None:
        self._kernel = kernel
        self.config = config
        self.decisions: List[Decision] = []
        self.notifications_received = 0
        self.queries_answered = 0
        self.alerts_requested = 0
        self.grant_count = 0
        self.deny_count = 0
        #: Alert requests absorbed by the on-screen coalescing window.
        self.alerts_coalesced = 0
        #: (pid, operation, blocked) -> expiry of the alert on screen.
        self._alert_coalesce: dict = {}
        #: pid -> (interaction_ts, ptrace_version, permissions_disabled).
        #: The epoch memo of the fast core; see the module docstring.
        self._decision_cache: Dict[int, Tuple[Timestamp, int, bool]] = {}
        #: Epoch-memo effectiveness counters (diagnostics; not compared by
        #: the equivalence tests since the reference path never caches).
        self.cache_hits = 0
        self.cache_misses = 0
        #: Prompt-mode arbiter (Section IV-A's verified extension).
        self.prompt_arbiter = None
        if config.prompt_mode:
            from repro.core.prompt_mode import PromptArbiter

            self.prompt_arbiter = PromptArbiter(self)
        #: Gray-box intent registry (Section VII's future-work direction).
        self.graybox = None
        if config.graybox_enabled:
            from repro.core.graybox import GrayBoxRegistry

            self.graybox = GrayBoxRegistry()
        # The fast core implements exactly the temporal-proximity rule; the
        # prompt and gray-box extensions hang extra state off the decision,
        # so their presence routes everything through the reference path.
        self._fast_core_ok = self.prompt_arbiter is None and self.graybox is None
        self._use_decision_cache = config.fast_decision_cache and self._fast_core_ok
        #: Per-config cache bound (default 4096; see OverhaulConfig).
        self._decision_cache_limit = getattr(
            config, "decision_cache_size", _DECISION_CACHE_LIMIT
        )

    # -- netlink wiring --------------------------------------------------------

    def install(self) -> None:
        """Register the monitor's message handlers on the kernel netlink."""
        netlink = self._kernel.netlink
        netlink.register_kernel_handler(MSG_INTERACTION, self._handle_interaction)
        netlink.register_kernel_handler(MSG_PERMISSION_QUERY, self._handle_query)
        if self.config.fast_netlink and self._fast_core_ok:
            # Payload-level zero-copy handlers for the two dominant message
            # types.  The regular handlers above stay registered: they are
            # the reference path (tracing on / fast path off).
            netlink.register_fast_handler(MSG_INTERACTION, self._fast_handle_interaction)
            netlink.register_fast_handler(MSG_PERMISSION_QUERY, self._fast_handle_query)
        if self.prompt_arbiter is not None:
            self.prompt_arbiter.install()

    def _require_display_manager(self, channel: NetlinkChannel) -> None:
        if channel.label != "display-manager":
            raise NoSuchProcess(
                f"permission-monitor messages accepted only from the display "
                f"manager channel, not {channel.label!r}"
            )

    def _handle_interaction(self, channel: NetlinkChannel, message: NetlinkMessage) -> None:
        """N_{A,t}: record the interaction in A's task_struct."""
        self._require_display_manager(channel)
        pid = message.payload["pid"]
        timestamp = message.payload["timestamp"]
        try:
            task = self._kernel.process_table.get_live(pid)
        except NoSuchProcess:
            return  # the client raced with its own exit; nothing to record
        task.record_interaction(timestamp)
        tracer = self._kernel.tracer
        if tracer.enabled:
            tracer.event(
                "monitor.record",
                "decision",
                pid=pid,
                timestamp=timestamp,
                interaction_ts=task.interaction_ts,
            )
        if "descriptor" in message.payload and timestamp >= task.interaction_ts:
            # Gray-box enrichment: remember what the blessing input was.
            # `>=` (not the merge result) so a same-instant newer event --
            # e.g. the press and release of one click -- refreshes the
            # descriptor to the latest input the user produced.
            descriptor = message.payload["descriptor"]
            if descriptor is not None:
                task.last_input_descriptor = descriptor
        self.notifications_received += 1

    def _handle_query(self, channel: NetlinkChannel, message: NetlinkMessage) -> dict:
        """Q_{A,t} -> R_{A,t}: answer a display-resource permission query."""
        self._require_display_manager(channel)
        pid = message.payload["pid"]
        operation = message.payload["operation"]
        timestamp = message.payload["timestamp"]
        try:
            task = self._kernel.process_table.get_live(pid)
        except NoSuchProcess:
            response = PermissionResponse(False, f"no such process {pid}")
            return response.as_payload
        response = self.decide(task, timestamp, operation)
        self.queries_answered += 1
        self._kernel.audit.record(
            timestamp=timestamp,
            category=_category_for(operation),
            decision=AuditDecision.GRANTED if response.granted else AuditDecision.DENIED,
            pid=pid,
            comm=task.comm,
            detail=operation,
        )
        return response.as_payload

    # -- zero-copy netlink handlers (fast path) --------------------------------

    def _fast_handle_interaction(self, channel: NetlinkChannel, payload: dict, sender_pid: int) -> None:
        """Payload-level twin of :meth:`_handle_interaction`.

        Runs only with tracing off (the netlink layer guarantees it), so
        the tracer event of the reference handler is not skipped -- it
        would not have fired either way.
        """
        if channel.label != "display-manager":
            self._require_display_manager(channel)  # raises canonically
        pid = payload["pid"]
        timestamp = payload["timestamp"]
        try:
            task = self._kernel.process_table.get_live(pid)
        except NoSuchProcess:
            return  # the client raced with its own exit; nothing to record
        # record_interaction, inlined (single write path semantics kept:
        # newer timestamps win).
        if timestamp > task.interaction_ts:
            task.interaction_ts = timestamp
        if "descriptor" in payload and timestamp >= task.interaction_ts:
            descriptor = payload["descriptor"]
            if descriptor is not None:
                task.last_input_descriptor = descriptor
        self.notifications_received += 1

    def _fast_handle_query(self, channel: NetlinkChannel, payload: dict, sender_pid: int) -> dict:
        """Payload-level twin of :meth:`_handle_query`."""
        if channel.label != "display-manager":
            self._require_display_manager(channel)  # raises canonically
        pid = payload["pid"]
        operation = payload["operation"]
        timestamp = payload["timestamp"]
        try:
            task = self._kernel.process_table.get_live(pid)
        except NoSuchProcess:
            return {"granted": False, "reason": f"no such process {pid}",
                    "interaction_age": None}
        granted, reason, age = self._decide_core(task, timestamp, operation)
        self.queries_answered += 1
        audit = self._kernel.audit
        append = audit.record_deferred if self.config.fast_audit_batch else audit.record
        append(
            timestamp,
            _category_for(operation),
            AuditDecision.GRANTED if granted else AuditDecision.DENIED,
            pid,
            task.comm,
            operation,
        )
        return {"granted": granted, "reason": reason, "interaction_age": age}

    # -- the decision rule ---------------------------------------------------------

    def _decide_core(self, task: Task, op_time: Timestamp, operation: str) -> Tuple[bool, str, Timestamp]:
        """The temporal-proximity rule, fast form: ``(granted, reason, age)``.

        Only valid when neither the prompt arbiter nor the gray-box
        registry is active (``_fast_core_ok``); callers route through
        :meth:`decide` otherwise.  Counter updates and the decision-log
        append are identical to the reference path.
        """
        interaction_ts = task.interaction_ts
        age = op_time - interaction_ts
        if self._use_decision_cache:
            ptrace = self._kernel.ptrace
            version = ptrace.version
            cache = self._decision_cache
            entry = cache.get(task.pid)
            if entry is not None and entry[0] == interaction_ts and entry[1] == version:
                disabled = entry[2]
                self.cache_hits += 1
            else:
                disabled = ptrace.permissions_disabled(task)
                if len(cache) >= self._decision_cache_limit:
                    cache.clear()
                cache[task.pid] = (interaction_ts, version, disabled)
                self.cache_misses += 1
        else:
            disabled = self._kernel.ptrace.permissions_disabled(task)
        if disabled:
            granted = False
            reason = "permissions disabled: task is being traced"
        elif interaction_ts == NEVER:
            granted = False
            reason = "no user interaction on record"
        elif age < 0:
            granted = False
            reason = "interaction is in the operation's future"
        elif age < self.config.interaction_threshold:
            granted = True
            reason = "interaction within threshold"
        else:
            granted = False
            reason = "interaction too old (age >= delta)"

        if granted:
            self.grant_count += 1
        elif self.config.force_grant:
            # Benchmark methodology (Section V-A): the full decision path
            # ran; now override so the benchmarked operation proceeds.
            granted = True
            reason = "force_grant override"
            self.grant_count += 1
        else:
            self.deny_count += 1
        decisions = self.decisions
        decisions.append(
            Decision(op_time, task.pid, task.comm, operation, age, granted, reason)
        )
        if len(decisions) > self.DECISION_LOG_LIMIT:
            del decisions[: -self.DECISION_LOG_LIMIT // 2]
        return granted, reason, age

    def decide(self, task: Task, op_time: Timestamp, operation: str) -> PermissionResponse:
        """The temporal-proximity rule: grant iff ``0 <= n < delta``.

        ``n`` is the time between the task's most recent authentic
        interaction and the privileged operation.  Interactions *after* the
        operation never count (n < 0 is a deny), and ptrace'd tasks are
        denied outright when the hardening is on.

        This is the reference implementation; :meth:`_decide_core` is the
        fast twin the mediation hot paths use.
        """
        # Reasons are constant strings: the decision path is the hottest
        # code in the system (every mediated operation runs it), and the
        # age is stored alongside, so nothing is lost.
        age = task.interaction_age(op_time)
        tracer = self._kernel.tracer
        span = None
        if tracer.enabled:
            span = tracer.start(
                "monitor.decide",
                "decision",
                pid=task.pid,
                comm=task.comm,
                operation=operation,
                age=age,
                threshold=self.config.interaction_threshold,
            )
        if self._kernel.ptrace.permissions_disabled(task):
            granted = False
            reason = "permissions disabled: task is being traced"
        elif task.interaction_ts == NEVER:
            granted = False
            reason = "no user interaction on record"
        elif age < 0:
            granted = False
            reason = "interaction is in the operation's future"
        elif age < self.config.interaction_threshold:
            granted = True
            reason = "interaction within threshold"
            if self.graybox is not None and not self.graybox.check(
                task.comm, operation, task.last_input_descriptor
            ):
                # The gray-box conjunct: the blessing input must express
                # intent for *this* operation per the app's profile.
                granted = False
                reason = "gray-box: input does not express intent for this operation"
        else:
            granted = False
            reason = "interaction too old (age >= delta)"

        if (
            not granted
            and self.prompt_arbiter is not None
            and not self._kernel.ptrace.permissions_disabled(task)
        ):
            # Prompt mode: an unexpired user answer for this exact
            # (process, operation) overrides the temporal check; with no
            # answer on record, a prompt is raised and the call fails now
            # (the application retries after the user responds).
            answer = self.prompt_arbiter.check_answer(task, operation, op_time)
            if answer is True:
                granted = True
                reason = "user approved via trusted prompt"
            elif answer is False:
                reason = "user denied via trusted prompt"
            else:
                self.prompt_arbiter.post_prompt(task, operation, op_time)
                reason = "pending user prompt"

        if self.config.force_grant and not granted:
            # Benchmark methodology (Section V-A): the full decision path
            # ran; now override so the benchmarked operation proceeds.
            granted = True
            reason = "force_grant override"

        if granted:
            self.grant_count += 1
        else:
            self.deny_count += 1
        self.decisions.append(
            Decision(
                timestamp=op_time,
                pid=task.pid,
                comm=task.comm,
                operation=operation,
                interaction_age=age,
                granted=granted,
                reason=reason,
            )
        )
        if len(self.decisions) > self.DECISION_LOG_LIMIT:
            del self.decisions[: -self.DECISION_LOG_LIMIT // 2]
        if span is not None:
            tracer.finish(span, granted=granted, reason=reason)
        return PermissionResponse(granted, reason, interaction_age=age)

    # -- the Kernel-facing mediation interface ----------------------------------------

    def authorize(self, task: Task, now: Timestamp, operation: str) -> bool:
        """Device-mediation entry point (called from the augmented open)."""
        if self._use_decision_cache and not self._kernel.tracer.enabled:
            return self._decide_core(task, now, operation)[0]
        return self.decide(task, now, operation).granted

    def request_visual_alert(
        self, task: Task, operation: str, blocked: bool = False
    ) -> None:
        """V_{A,op}: ask the display manager (over netlink) to alert the user.

        Requests are coalesced: while an alert for the same (pid, op,
        outcome) is still on screen, re-requesting it would change nothing
        the user can see, so the kernel skips the netlink round trip.  A
        process hammering a device produces one alert per alert-duration
        window, not one per access -- which is also what keeps the alert
        path off the Table I hot loops.
        """
        if blocked and not self.config.alert_on_denial:
            return
        if not blocked and not self.config.alert_on_device_grant:
            return
        key = (task.pid, operation, blocked)
        now = self._kernel.now
        tracer = self._kernel.tracer
        expiry = self._alert_coalesce.get(key)
        if expiry is not None and now < expiry:
            self.alerts_coalesced += 1
            if tracer.enabled:
                tracer.event(
                    "alert.coalesce", "alert",
                    pid=task.pid, operation=operation, blocked=blocked,
                )
            return
        self._alert_coalesce[key] = now + self.config.alert_duration
        if len(self._alert_coalesce) > 4096:
            self._alert_coalesce = {
                k: v for k, v in self._alert_coalesce.items() if v > now
            }
        channel = self._kernel.netlink.channel_for("display-manager")
        if channel is None:
            return  # no display manager (headless boot); nothing to show
        if tracer.enabled:
            tracer.event(
                "alert.request", "alert",
                pid=task.pid, operation=operation, blocked=blocked,
            )
        channel.send_to_userspace(
            MSG_VISUAL_ALERT,
            {
                "pid": task.pid,
                "comm": task.comm,
                "operation": operation,
                "blocked": blocked,
            },
        )
        self.alerts_requested += 1

    # -- queries for experiments ---------------------------------------------------------

    def denied_decisions(self) -> List[Decision]:
        return [d for d in self.decisions if not d.granted]

    def granted_decisions(self) -> List[Decision]:
        return [d for d in self.decisions if d.granted]

    def decisions_for_pid(self, pid: int) -> List[Decision]:
        return [d for d in self.decisions if d.pid == pid]
