"""The red-team campaign engine.

The paper's core claim is a *security* argument: input-driven access
control defeats input-inference and UI-deception attacks.  This package
turns that claim into a measurable, regression-testable artifact:

- :mod:`repro.redteam.scenario` -- the declarative :class:`AttackScenario`
  model (setup, adversary schedule, oracle) and the per-trial harness;
- :mod:`repro.redteam.corpus`   -- the scenario corpus: six attack
  families drawn from the paper's threat analysis and the related work
  (Hover-style input inference, Hacking-in-the-Blind-style overlays);
- :mod:`repro.redteam.engine`   -- the campaign runner scoring each
  scenario as false-grant / false-deny / detection rates with Wilson
  intervals;
- :mod:`repro.redteam.sweeps`   -- parameter sweeps over delta and the
  window-visibility threshold producing ROC-style curve data.

Campaigns are deterministic: every trial draws from
:meth:`repro.sim.rng.RandomSource.spawn` keyed by (scenario, arm, trial),
never by shard or worker identity, so ``python -m repro redteam --json``
is byte-identical for any ``--workers`` count.  The ``redteam`` fleet
study (:mod:`repro.fleet.studies`) shards campaigns at population scale.
"""

from repro.redteam.corpus import (
    CORPUS,
    FAMILIES,
    scenario_by_name,
    scenarios_for_families,
)
from repro.redteam.engine import (
    CampaignReport,
    ScenarioScore,
    run_campaign,
    run_redteam_shard,
)
from repro.redteam.scenario import (
    AttackScenario,
    TrialOutcome,
    VerdictEnvelope,
    detection_artifacts,
    run_counted_trial,
    run_scenario_trial,
)
from repro.redteam.sweeps import SweepPoint, SweepResult, sweep_delta, sweep_visibility

__all__ = [
    "AttackScenario",
    "CORPUS",
    "CampaignReport",
    "FAMILIES",
    "ScenarioScore",
    "SweepPoint",
    "SweepResult",
    "TrialOutcome",
    "VerdictEnvelope",
    "detection_artifacts",
    "run_campaign",
    "run_counted_trial",
    "run_redteam_shard",
    "run_scenario_trial",
    "scenario_by_name",
    "scenarios_for_families",
    "sweep_delta",
    "sweep_visibility",
]
