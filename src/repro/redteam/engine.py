"""The campaign runner: score scenarios as rates, check envelopes.

The unit of work is the *shard envelope* produced by
:func:`run_redteam_shard` -- a JSON/pickle-safe dict accumulating one
scenario's trial block.  Everything else is built from envelopes:

- :func:`run_campaign` runs every scenario's trials inline (one envelope
  per scenario) and wraps them in a :class:`CampaignReport`;
- the ``redteam`` fleet study (:mod:`repro.fleet.studies`) runs the same
  envelopes sharded across worker processes and aggregates them with
  :func:`aggregate_redteam`.

Both paths sum the same integers in the same order, so
``python -m repro redteam --json`` is byte-identical for any worker
count -- the determinism contract the campaign-smoke CI job diffs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.population import proportion_summary
from repro.obs.counters import Counters
from repro.redteam.corpus import scenario_by_name, scenarios_for_families
from repro.redteam.scenario import AttackScenario, VerdictEnvelope, run_counted_trial
from repro.sim.rng import RandomSource


def run_redteam_shard(
    scenario_name: str,
    seed: int,
    first_trial: int,
    count: int,
    include_baseline: bool = True,
    overrides: Optional[Dict[str, int]] = None,
) -> Dict[str, Any]:
    """Run trials [first_trial, first_trial+count) of one scenario.

    Pure and idempotent: the envelope depends only on the arguments, never
    on which worker runs it or what ran before -- each trial builds fresh
    machines and a fresh counter registry.
    """
    scenario = scenario_by_name(scenario_name)
    root = RandomSource(seed, name="redteam")
    protected_counters = Counters()
    baseline_counters = Counters()
    envelope: Dict[str, Any] = {
        "scenario": scenario.name,
        "family": scenario.family,
        "first_trial": first_trial,
        "trials": count,
        "false_grants": 0,
        "blocked": 0,
        "detected_blocked": 0,
        "benign_trials": 0,
        "benign_denials": 0,
        "baseline_trials": 0,
        "baseline_successes": 0,
    }
    for trial in range(first_trial, first_trial + count):
        outcome, snapshot = run_counted_trial(scenario, root, trial, True, overrides)
        protected_counters.merge(Counters(snapshot))
        if outcome.attack_granted:
            envelope["false_grants"] += 1
        else:
            envelope["blocked"] += 1
            if outcome.detected:
                envelope["detected_blocked"] += 1
        if outcome.benign_denied is not None:
            envelope["benign_trials"] += 1
            if outcome.benign_denied:
                envelope["benign_denials"] += 1
        if include_baseline:
            base, base_snapshot = run_counted_trial(
                scenario, root, trial, False, overrides
            )
            baseline_counters.merge(Counters(base_snapshot))
            envelope["baseline_trials"] += 1
            if base.attack_granted:
                envelope["baseline_successes"] += 1
    envelope["counters"] = {
        "protected": protected_counters.snapshot(),
        "baseline": baseline_counters.snapshot(),
    }
    return envelope


def _merge_envelopes(envelopes: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Sum trial blocks of one scenario into a single envelope."""
    merged = dict(envelopes[0])
    merged["first_trial"] = min(e["first_trial"] for e in envelopes)
    for key in (
        "trials",
        "false_grants",
        "blocked",
        "detected_blocked",
        "benign_trials",
        "benign_denials",
        "baseline_trials",
        "baseline_successes",
    ):
        merged[key] = sum(e[key] for e in envelopes)
    merged["counters"] = {
        arm: Counters.merged(e["counters"][arm] for e in envelopes).snapshot()
        for arm in ("protected", "baseline")
    }
    return merged


@dataclass(frozen=True)
class ScenarioScore:
    """One scenario's campaign verdict, with envelope checking."""

    scenario: str
    family: str
    trials: int
    false_grants: int
    blocked: int
    detected_blocked: int
    benign_trials: int
    benign_denials: int
    baseline_trials: int
    baseline_successes: int
    counters: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @classmethod
    def from_envelopes(cls, envelopes: List[Dict[str, Any]]) -> "ScenarioScore":
        merged = _merge_envelopes(envelopes)
        return cls(
            scenario=merged["scenario"],
            family=merged["family"],
            trials=merged["trials"],
            false_grants=merged["false_grants"],
            blocked=merged["blocked"],
            detected_blocked=merged["detected_blocked"],
            benign_trials=merged["benign_trials"],
            benign_denials=merged["benign_denials"],
            baseline_trials=merged["baseline_trials"],
            baseline_successes=merged["baseline_successes"],
            counters=merged["counters"],
        )

    @property
    def false_grant_rate(self) -> float:
        return self.false_grants / self.trials if self.trials else 0.0

    @property
    def detection_rate(self) -> float:
        """Over *blocked* trials; vacuously 1.0 when nothing was blocked."""
        return self.detected_blocked / self.blocked if self.blocked else 1.0

    @property
    def false_deny_rate(self) -> float:
        return self.benign_denials / self.benign_trials if self.benign_trials else 0.0

    @property
    def baseline_success_rate(self) -> float:
        return (
            self.baseline_successes / self.baseline_trials
            if self.baseline_trials
            else 1.0
        )

    def envelope_violations(self, expected: VerdictEnvelope) -> List[str]:
        """Every way this score escapes its expected verdict envelope."""
        violations: List[str] = []
        if self.false_grant_rate > expected.max_false_grant_rate:
            violations.append(
                f"false-grant rate {self.false_grant_rate:.3f} above "
                f"{expected.max_false_grant_rate:.3f}"
            )
        if self.false_grant_rate < expected.min_false_grant_rate:
            violations.append(
                f"false-grant rate {self.false_grant_rate:.3f} below "
                f"{expected.min_false_grant_rate:.3f}"
            )
        if self.blocked and self.detection_rate < expected.min_detection_rate:
            violations.append(
                f"detection rate {self.detection_rate:.3f} below "
                f"{expected.min_detection_rate:.3f}"
            )
        if self.false_deny_rate > expected.max_false_deny_rate:
            violations.append(
                f"false-deny rate {self.false_deny_rate:.3f} above "
                f"{expected.max_false_deny_rate:.3f}"
            )
        if (
            self.baseline_trials
            and self.baseline_success_rate < expected.min_baseline_success_rate
        ):
            violations.append(
                f"baseline success rate {self.baseline_success_rate:.3f} below "
                f"{expected.min_baseline_success_rate:.3f}"
            )
        return violations

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe summary with Wilson intervals (stable key order via
        the canonical ``sort_keys`` serialisation)."""
        return {
            "scenario": self.scenario,
            "family": self.family,
            "trials": self.trials,
            "false_grant": proportion_summary(self.false_grants, self.trials),
            "detection": proportion_summary(self.detected_blocked, self.blocked),
            "false_deny": proportion_summary(self.benign_denials, self.benign_trials),
            "baseline_success": proportion_summary(
                self.baseline_successes, self.baseline_trials
            ),
            "counters": self.counters,
        }


@dataclass
class CampaignReport:
    """Everything one campaign produced, for humans and machines."""

    seed: int
    trials: int
    scores: List[ScenarioScore] = field(default_factory=list)

    def score_for(self, scenario_name: str) -> ScenarioScore:
        for score in self.scores:
            if score.scenario == scenario_name:
                return score
        raise KeyError(f"no score for scenario {scenario_name!r}")

    def violations(self) -> Dict[str, List[str]]:
        """Envelope violations per scenario (empty dict: all in envelope)."""
        result: Dict[str, List[str]] = {}
        for score in self.scores:
            expected = scenario_by_name(score.scenario).expected
            broken = score.envelope_violations(expected)
            if broken:
                result[score.scenario] = broken
        return result

    def to_dict(self) -> Dict[str, Any]:
        return {
            "study": "redteam",
            "seed": self.seed,
            "trials": self.trials,
            "scenarios": [score.to_dict() for score in self.scores],
            "violations": self.violations(),
        }

    def to_json(self) -> str:
        """Canonical serialisation -- byte-identical across runs/workers."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def render(self) -> str:
        lines = [f"red-team campaign: {self.trials} trials/scenario, seed {self.seed}"]
        header = (
            f"  {'scenario':<24} {'family':<8} {'f-grant':>8} {'detect':>8} "
            f"{'f-deny':>8} {'baseline':>9}"
        )
        lines.append(header)
        for score in self.scores:
            lines.append(
                f"  {score.scenario:<24} {score.family:<8} "
                f"{score.false_grant_rate:>8.3f} {score.detection_rate:>8.3f} "
                f"{score.false_deny_rate:>8.3f} {score.baseline_success_rate:>9.3f}"
            )
        violations = self.violations()
        if violations:
            lines.append("  !! envelope violations:")
            for name, broken in sorted(violations.items()):
                for reason in broken:
                    lines.append(f"    {name}: {reason}")
        else:
            lines.append("  all scenarios inside their verdict envelopes")
        return "\n".join(lines)


def run_campaign(
    families: Optional[List[str]] = None,
    trials: int = 12,
    seed: int = 2016,
    include_baseline: bool = True,
    overrides: Optional[Dict[str, int]] = None,
) -> CampaignReport:
    """Run the corpus (or a family slice) inline, one envelope per scenario."""
    scenarios: List[AttackScenario] = scenarios_for_families(families)
    report = CampaignReport(seed=seed, trials=trials)
    for scenario in scenarios:
        envelope = run_redteam_shard(
            scenario.name, seed, 0, trials, include_baseline, overrides
        )
        report.scores.append(ScenarioScore.from_envelopes([envelope]))
    return report


def aggregate_redteam(
    envelopes: List[Dict[str, Any]], meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Combine fleet shard envelopes into the campaign aggregate.

    *envelopes* arrive in shard-index order (the engine guarantees it);
    shards of the same scenario are summed, scenarios keep corpus order.
    The output matches :meth:`CampaignReport.to_dict` so the inline and
    fleet paths serialise identically.
    """
    by_scenario: Dict[str, List[Dict[str, Any]]] = {}
    for envelope in envelopes:
        by_scenario.setdefault(envelope["scenario"], []).append(envelope)
    report = CampaignReport(
        seed=(meta or {}).get("seed", 0),
        trials=(meta or {}).get("population", 0),
    )
    for name in by_scenario:
        report.scores.append(ScenarioScore.from_envelopes(by_scenario[name]))
    aggregate = report.to_dict()
    if meta:
        aggregate["meta"] = meta
    return aggregate


# ---------------------------------------------------------------------------
# Streaming aggregation (the fleet merge path)
# ---------------------------------------------------------------------------

#: The integer envelope fields summed across a scenario's trial blocks.
_SUM_KEYS = (
    "trials",
    "false_grants",
    "blocked",
    "detected_blocked",
    "benign_trials",
    "benign_denials",
    "baseline_trials",
    "baseline_successes",
)


class _ScenarioAccumulator:
    """Online sums for one scenario -- what ``_merge_envelopes`` produces,
    built shard by shard instead of from a materialised list."""

    __slots__ = ("scenario", "family", "sums", "protected", "baseline")

    def __init__(self, scenario: str, family: str) -> None:
        self.scenario = scenario
        self.family = family
        self.sums = {key: 0 for key in _SUM_KEYS}
        self.protected = Counters()
        self.baseline = Counters()

    def fold(self, envelope: Dict[str, Any]) -> None:
        from repro.analysis.population import merge_counters

        sums = self.sums
        for key in _SUM_KEYS:
            sums[key] += envelope[key]
        merge_counters(self.protected, envelope["counters"]["protected"])
        merge_counters(self.baseline, envelope["counters"]["baseline"])

    def merge(self, other: "_ScenarioAccumulator") -> None:
        sums = self.sums
        for key in _SUM_KEYS:
            sums[key] += other.sums[key]
        self.protected.merge(other.protected)
        self.baseline.merge(other.baseline)

    def score(self) -> ScenarioScore:
        return ScenarioScore(
            scenario=self.scenario,
            family=self.family,
            counters={
                "protected": self.protected.snapshot(),
                "baseline": self.baseline.snapshot(),
            },
            **self.sums,
        )


class RedteamState:
    """Accumulator behind :func:`redteam_reducer`.

    Scenario order is first-seen order; since the fold runs in shard-id
    order and shards are built corpus-first, that *is* corpus order --
    the same order :func:`aggregate_redteam` emits.
    """

    __slots__ = ("scenarios",)

    def __init__(self) -> None:
        self.scenarios: Dict[str, _ScenarioAccumulator] = {}

    def fold(self, envelope: Dict[str, Any]) -> None:
        name = envelope["scenario"]
        accumulator = self.scenarios.get(name)
        if accumulator is None:
            accumulator = _ScenarioAccumulator(name, envelope["family"])
            self.scenarios[name] = accumulator
        accumulator.fold(envelope)

    def merge(self, other: "RedteamState") -> "RedteamState":
        for name, accumulator in other.scenarios.items():
            own = self.scenarios.get(name)
            if own is None:
                self.scenarios[name] = accumulator
            else:
                own.merge(accumulator)
        return self

    def finalize(self, meta: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        report = CampaignReport(
            seed=(meta or {}).get("seed", 0),
            trials=(meta or {}).get("population", 0),
        )
        for accumulator in self.scenarios.values():
            report.scores.append(accumulator.score())
        aggregate = report.to_dict()
        if meta:
            aggregate["meta"] = dict(meta)
        return aggregate


def redteam_reducer():
    """The red-team study's :class:`repro.fleet.reducers.StreamingReducer`."""
    from repro.fleet.reducers import StreamingReducer

    return StreamingReducer(
        init=RedteamState,
        fold=lambda state, envelope, index: state.fold(envelope),
        merge=lambda left, right: left.merge(right),
        finalize=lambda state, meta: state.finalize(dict(meta) if meta else None),
    )
