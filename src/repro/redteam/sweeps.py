"""Parameter sweeps: delta and the visibility threshold as ROC curves.

The paper fixes delta at 2 s with one sentence of justification and never
names a visibility threshold at all.  These sweeps chart what each knob
buys: at every grid value the same fixed population of adversary and
benign timings is replayed against a real protected machine, producing a
(false-grant rate, benign-grant rate) operating point -- an ROC curve
over the knob.

The timing draws come from spawn keys that do NOT include the swept
value, so the identical delays are evaluated at every grid point.  Each
probe's success is then monotone in the parameter, which makes the whole
curve *exactly* monotone -- the integration tests assert it outright
instead of statistically.

- ``sweep_delta``: the adversary holds a genuine but aging stamp (age ~
  U(0.5 s, 4 s)); the benign user acts ``response`` (~ U(0.1 s, 3.5 s))
  after clicking.  Raising delta admits more stale stamps (security
  cost) and forgives slower users (usability gain).
- ``sweep_visibility``: the ambush window minimises its exposure (popping
  over just before the click, ~ U(0 s, 0.75 s) -- any longer and the
  user notices the ambush), while honest windows have typically been up
  longer (~ U(0.25 s, 2 s)).  Raising the threshold blocks more ambushes
  and more young-but-honest windows.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.population import proportion_summary
from repro.analysis.roc import auc_trapezoid, roc_points
from repro.apps.base import SimApp
from repro.core.config import OverhaulConfig
from repro.core.system import Machine
from repro.kernel.errors import OverhaulDenied
from repro.sim.rng import RandomSource
from repro.sim.time import Timestamp, from_millis, from_seconds

#: Default grids, in simulated microseconds.
DELTA_GRID: Tuple[Timestamp, ...] = tuple(
    from_seconds(s) for s in (0.25, 0.5, 1.0, 2.0, 3.0, 4.0)
)
VISIBILITY_GRID: Tuple[Timestamp, ...] = tuple(
    from_seconds(s) for s in (0.0, 0.25, 0.5, 1.0, 1.5, 2.0)
)


@dataclass(frozen=True)
class SweepPoint:
    """One grid value's operating point."""

    value: Timestamp
    attack_successes: int
    benign_grants: int
    trials: int

    @property
    def false_grant_rate(self) -> float:
        return self.attack_successes / self.trials if self.trials else 0.0

    @property
    def benign_grant_rate(self) -> float:
        return self.benign_grants / self.trials if self.trials else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "value_us": self.value,
            "false_grant": proportion_summary(self.attack_successes, self.trials),
            "benign_grant": proportion_summary(self.benign_grants, self.trials),
        }


@dataclass
class SweepResult:
    """A full sweep: the curve plus its AUC."""

    parameter: str  # "delta" | "visibility"
    seed: int
    trials: int
    points: List[SweepPoint] = field(default_factory=list)

    def auc(self) -> float:
        return auc_trapezoid(
            [(p.false_grant_rate, p.benign_grant_rate) for p in self.points]
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "study": "redteam-sweep",
            "parameter": self.parameter,
            "seed": self.seed,
            "trials": self.trials,
            "points": [p.to_dict() for p in self.points],
            "roc": roc_points(
                [
                    (p.attack_successes, p.trials, p.benign_grants, p.trials)
                    for p in self.points
                ]
            ),
            "auc": self.auc(),
        }

    def to_json(self) -> str:
        """Canonical serialisation -- byte-identical across runs."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def render(self) -> str:
        lines = [
            f"{self.parameter} sweep: {self.trials} trials/point, seed {self.seed}",
            f"  {'value':>10} {'false-grant':>12} {'benign-grant':>13}",
        ]
        for point in self.points:
            lines.append(
                f"  {point.value:>10} {point.false_grant_rate:>12.3f} "
                f"{point.benign_grant_rate:>13.3f}"
            )
        lines.append(f"  AUC (benign vs false grants): {self.auc():.3f}")
        return "\n".join(lines)


def _delta_config(delta: Timestamp) -> OverhaulConfig:
    return OverhaulConfig(
        interaction_threshold=delta,
        shm_waitlist=min(from_millis(500), delta // 2),
    )


def _mic_granted(app: SimApp) -> bool:
    try:
        fd = app.open_device("mic0")
    except OverhaulDenied:
        return False
    app.close_fd(fd)
    return True


def sweep_delta(
    values: Optional[Sequence[Timestamp]] = None,
    trials: int = 16,
    seed: int = 2016,
) -> SweepResult:
    """Replay fixed stale-stamp / slow-user timings at every delta."""
    grid = tuple(values) if values is not None else DELTA_GRID
    root = RandomSource(seed, name="redteam-sweep")
    draws = []
    for trial in range(trials):
        rng = root.spawn(("sweep-delta", trial))
        draws.append(
            (
                from_seconds(rng.uniform(0.5, 4.0)),  # adversary's stamp age
                from_seconds(rng.uniform(0.1, 3.5)),  # benign response delay
            )
        )
    result = SweepResult(parameter="delta", seed=seed, trials=trials)
    for delta in grid:
        attack_successes = 0
        benign_grants = 0
        for stamp_age, response in draws:
            machine = Machine.with_overhaul(_delta_config(delta), name="sweep-delta")
            adversary = SimApp(machine, "/usr/bin/staler", comm="staler")
            machine.settle()
            adversary.click()
            machine.run_for(stamp_age)
            if _mic_granted(adversary):
                attack_successes += 1
            benign = SimApp(machine, "/usr/bin/notes", comm="notes")
            machine.settle()
            benign.click()
            machine.run_for(response)
            if _mic_granted(benign):
                benign_grants += 1
        result.points.append(
            SweepPoint(
                value=delta,
                attack_successes=attack_successes,
                benign_grants=benign_grants,
                trials=trials,
            )
        )
    return result


def sweep_visibility(
    values: Optional[Sequence[Timestamp]] = None,
    trials: int = 16,
    seed: int = 2016,
) -> SweepResult:
    """Replay fixed ambush/benign window ages at every threshold."""
    grid = tuple(values) if values is not None else VISIBILITY_GRID
    root = RandomSource(seed, name="redteam-sweep")
    draws = []
    for trial in range(trials):
        rng = root.spawn(("sweep-visibility", trial))
        draws.append(
            (
                from_seconds(rng.uniform(0.0, 0.75)),  # ambush exposure
                from_seconds(rng.uniform(0.25, 2.0)),  # benign window age
            )
        )
    result = SweepResult(parameter="visibility", seed=seed, trials=trials)
    for threshold in grid:
        attack_successes = 0
        benign_grants = 0
        for exposure, benign_age in draws:
            config = OverhaulConfig(window_visibility_threshold=threshold)
            machine = Machine.with_overhaul(config, name="sweep-visibility")
            machine.settle()
            ambusher = SimApp(
                machine, "/usr/bin/ambush", comm="ambush", map_window=False
            )
            machine.xserver.map_window(ambusher.client, ambusher.window.drawable_id)
            machine.run_for(exposure)
            machine.mouse.click_window(ambusher.window)
            if _mic_granted(ambusher):
                attack_successes += 1

            benign_machine = Machine.with_overhaul(config, name="sweep-benign")
            benign = SimApp(benign_machine, "/usr/bin/notes", comm="notes")
            benign_machine.run_for(benign_age)
            benign.click()
            if _mic_granted(benign):
                benign_grants += 1
        result.points.append(
            SweepPoint(
                value=threshold,
                attack_successes=attack_successes,
                benign_grants=benign_grants,
                trials=trials,
            )
        )
    return result
