"""The adversarial scenario corpus: six attack families, nine playbooks.

Each family targets one layer of the defence and comes straight from the
paper's threat analysis or the related work:

- ``flood``   -- synthetic-input floods (S2): forge many fake clicks via
  SendEvent / XTestFakeInput hoping one blesses a device grab; defeated by
  provenance tagging in the input path.
- ``infer``   -- Hover-style input inference: observe the user's typing
  through screen captures and in-flight clipboard properties; defeated by
  capture mediation and the paste-target-only delivery rule.
- ``race``    -- clickjacking races against the visibility threshold: map
  an ambush window and time the user's click against the window-age gate.
  This is the corpus's *calibrated residual*: the adversary wins exactly
  when it outwaits the threshold, so the false-grant rate measures the
  threshold itself (the ablation the sweeps chart).
- ``overlay`` -- Hacking-in-the-Blind-style invisible overlays: a
  transparent window steals a real click; defeated by suppressing
  interactions on transparent targets.
- ``launder`` -- IPC timestamp laundering (P2 abuse): relay a genuine but
  aging interaction stamp through pipes / message queues hoping transit
  refreshes it; defeated by embed-at-send + max-merge adoption.
- ``ptrace``  -- confused-deputy injection (Section IV-B): bless yourself
  with a real click, spawn a legitimate recorder, puppeteer it via ptrace.
  Attach-and-inject is defeated by trace revocation; the detach race is
  the *documented residual* -- after detaching, the inherited blessing is
  still fresh and the child opens the device itself.

Every ``run_trial`` works on baseline machines too (``machine.overhaul``
is None): the baseline arm calibrates viability -- an "attack" the stock
system also stops would prove nothing about Overhaul.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.apps.base import SimApp
from repro.apps.malware import (
    ClickjackingMalware,
    ClipboardProtocolAttacker,
    InputForgeryMalware,
    PtraceInjectionMalware,
    Spyware,
)
from repro.core.config import OverhaulConfig
from repro.core.system import Machine
from repro.kernel.errors import OverhaulDenied
from repro.kernel.task import Task
from repro.redteam.scenario import (
    AttackScenario,
    TrialOutcome,
    VerdictEnvelope,
    detection_artifacts,
)
from repro.sim.rng import RandomSource
from repro.sim.time import from_millis


def _build_config(overrides: Dict[str, int]) -> OverhaulConfig:
    """The shared config builder; sweeps inject ``delta``/``visibility``.

    A small delta drags the shm wait-list down with it to keep the
    paper's "sufficiently shorter" constraint satisfied.
    """
    kwargs: Dict[str, int] = {}
    delta = overrides.get("delta")
    if delta is not None:
        kwargs["interaction_threshold"] = delta
        kwargs["shm_waitlist"] = min(from_millis(500), delta // 2)
    visibility = overrides.get("visibility")
    if visibility is not None:
        kwargs["window_visibility_threshold"] = visibility
    return OverhaulConfig(**kwargs)


def _task_mic_denied(machine: Machine, task: Task) -> bool:
    """Open-and-close the microphone as *task*; True when denied."""
    try:
        fd = machine.kernel.sys_open(task, machine.kernel.device_path("mic0"))
    except OverhaulDenied:
        return True
    machine.kernel.sys_close(task, fd)
    return False


def _benign_probe(machine: Machine, rng: RandomSource) -> bool:
    """The collateral-damage probe: a legitimate user action after the
    attack has run.  A user clicks a fresh app and it opens the mic within
    normal reaction time -- any denial here is a false deny."""
    helper = SimApp(machine, "/usr/bin/notes", comm="notes")
    machine.settle()
    helper.click()
    machine.run_for(rng.reaction_time())
    try:
        helper.open_device("mic0")
    except OverhaulDenied:
        return True
    return False


def _wrap(attack) -> "AttackScenario.run_trial":
    """Standard trial shape: run the attack, snapshot detection *before*
    the benign probe (whose granted mic would itself raise an alert)."""

    def run(machine: Machine, rng: RandomSource, config: OverhaulConfig) -> TrialOutcome:
        granted, detail = attack(machine, rng, config)
        detected = detection_artifacts(machine) > 0
        benign = _benign_probe(machine, rng)
        return TrialOutcome(
            attack_granted=granted,
            benign_denied=benign,
            detected=detected,
            detail=detail,
        )

    return run


# -- flood: synthetic-input floods (S2) --------------------------------------


def _flood(method_name: str):
    def attack(machine, rng, config) -> Tuple[bool, str]:
        forger = InputForgeryMalware(machine)
        machine.settle()
        attempts = rng.randint(6, 14)
        granted = False
        for _ in range(attempts):
            granted |= getattr(forger, method_name)()
            machine.run_for(rng.jittered_delay(0.05))
        return granted, f"{attempts} forged clicks"

    return attack


# -- infer: Hover-style input inference ---------------------------------------


def _infer_input(machine, rng, config) -> Tuple[bool, str]:
    victim = SimApp(machine, "/usr/bin/bank", comm="bank")
    editor = SimApp(machine, "/usr/bin/editor", comm="editor")
    spy = Spyware(machine)
    snoop = ClipboardProtocolAttacker(machine)
    snoop.watch_window_properties(editor.window.drawable_id)
    machine.settle()

    secret = f"pin-{rng.randint(1000, 9999)}"
    observed = False
    # Channel 1: capture the screen while the user types the secret.
    victim.click()
    for end in (2, len(secret)):
        victim.type_keys(secret[:end])
        victim.paint(secret[:end].encode())
        image = spy.attempt_screen()
        observed |= image is not None and secret.encode() in image
    # Channel 2: snatch the secret from the in-flight clipboard property.
    victim.copy_text(secret.encode())
    editor.click()
    editor.paste_text()
    observed |= any(secret.encode() in item for item in snoop.sniffed)
    return observed, f"secret {secret!r}"


# -- race: clickjacking race against the visibility threshold -----------------


def _race_visibility(machine, rng, config) -> Tuple[bool, str]:
    SimApp(machine, "/usr/bin/game", comm="game")  # the decoy under attack
    machine.settle()
    ambusher = SimApp(machine, "/usr/bin/ambush", comm="ambush", map_window=False)
    machine.xserver.map_window(ambusher.client, ambusher.window.drawable_id)
    # The adversary gambles on how long it dares stay visible before the
    # click lands: long enough to pass the age gate, short enough that the
    # user has not noticed the ambush window.
    exposure = max(1, int(config.window_visibility_threshold * rng.uniform(0.25, 1.75)))
    machine.run_for(exposure)
    machine.mouse.click_window(ambusher.window)
    try:
        fd = ambusher.open_device("mic0")
    except OverhaulDenied:
        return False, f"exposure {exposure} us"
    ambusher.close_fd(fd)
    return True, f"exposure {exposure} us"


# -- overlay: invisible-overlay click theft -----------------------------------


def _overlay_steal(machine, rng, config) -> Tuple[bool, str]:
    victim = SimApp(machine, "/usr/bin/editor", comm="editor")
    jacker = ClickjackingMalware(machine, victim.window)
    machine.settle()  # the overlay is old enough; transparency is the test
    jacker.pop_over_and_wait()
    machine.run_for(rng.jittered_delay(0.2))
    # The user clicks what looks like the editor; the transparent overlay
    # on top receives the event.
    machine.mouse.click_window(victim.window)
    return jacker.try_microphone(), "click routed to transparent overlay"


# -- launder: IPC timestamp-laundering chains ---------------------------------


def _launder_pipes(machine, rng, config) -> Tuple[bool, str]:
    front = SimApp(machine, "/usr/bin/freebie", comm="freebie")
    machine.settle()
    front.click()  # the one genuine interaction the chain tries to stretch
    hops = rng.randint(3, 6)
    current = front.task
    for hop in range(hops):
        nxt, _ = machine.launch(f"/usr/bin/hop{hop}", comm=f"hop{hop}", connect_x=False)
        pipe = machine.kernel.pipes.create_pipe()
        pipe.write(current, b"relay")
        # Per-hop transit chosen so the chain total always overshoots
        # delta: embed-at-send means the stamp ages in flight.
        machine.run_for(int(config.interaction_threshold / hops * rng.uniform(1.05, 1.5)))
        pipe.read(nxt, 5)
        current = nxt
    return not _task_mic_denied(machine, current), f"{hops} pipe hops"


def _launder_msgqueue(machine, rng, config) -> Tuple[bool, str]:
    front = SimApp(machine, "/usr/bin/front", comm="front")
    machine.settle()
    front.click()
    relay, _ = machine.launch("/usr/bin/relay", comm="relay", connect_x=False)
    queue = machine.kernel.msg_queues.msgget(777)
    queue.send(front.task, b"seed")
    queue.receive(relay)  # a legitimate P2 handoff, still inside delta
    rounds = rng.randint(2, 4)
    current = relay
    for index in range(rounds):
        # Each round the relay re-sends the stamp hoping the queue transit
        # refreshes it; max-merge adoption only ever replays the original.
        machine.run_for(int(config.interaction_threshold * rng.uniform(0.55, 0.8)))
        queue.send(current, b"ping")
        nxt, _ = machine.launch(
            f"/usr/bin/relay{index}", comm=f"relay{index}", connect_x=False
        )
        queue.receive(nxt)
        current = nxt
    return not _task_mic_denied(machine, current), f"{rounds} queue rounds"


# -- ptrace: confused-deputy injection ----------------------------------------


def _ptrace_inject(machine, rng, config) -> Tuple[bool, str]:
    injector = PtraceInjectionMalware(machine, map_window=True)
    machine.settle()
    injector.click()  # socially-engineered blessing: the stamp is genuine
    machine.run_for(int(config.interaction_threshold * rng.uniform(0.05, 0.3)))
    return injector.launch_and_inject(), "inject into blessed child"


def _ptrace_detach_race(machine, rng, config) -> Tuple[bool, str]:
    injector = PtraceInjectionMalware(machine, map_window=True)
    machine.settle()
    injector.click()
    victim = injector.spawn_child("/usr/bin/arecord")
    machine.kernel.ptrace.attach(injector.task, victim)
    denied_while_traced = _task_mic_denied(machine, victim)
    machine.run_for(int(config.interaction_threshold * rng.uniform(0.05, 0.2)))
    machine.kernel.ptrace.detach(injector.task, victim)
    granted = not _task_mic_denied(machine, victim)
    detail = "denied while traced, granted after detach" if denied_while_traced else (
        "granted after detach"
    )
    return granted, detail


# -- the corpus ---------------------------------------------------------------

#: Every scenario expects full baseline viability; deviations are per-field.
_AIRTIGHT = VerdictEnvelope()  # zero false grants, full detection

CORPUS: Tuple[AttackScenario, ...] = (
    AttackScenario(
        name="flood-sendevent",
        family="flood",
        description="SendEvent click flood aimed at the forger's own window",
        build_config=_build_config,
        run_trial=_wrap(_flood("forge_with_sendevent")),
        expected=_AIRTIGHT,
    ),
    AttackScenario(
        name="flood-xtest",
        family="flood",
        description="XTestFakeInput click flood aimed at the forger's own window",
        build_config=_build_config,
        run_trial=_wrap(_flood("forge_with_xtest")),
        expected=_AIRTIGHT,
    ),
    AttackScenario(
        name="infer-overlay-keylog",
        family="infer",
        description="input inference via screen captures and clipboard snooping",
        build_config=_build_config,
        run_trial=_wrap(_infer_input),
        expected=_AIRTIGHT,
    ),
    AttackScenario(
        name="race-visibility-window",
        family="race",
        description="ambush window gambling its exposure against the age gate",
        build_config=_build_config,
        run_trial=_wrap(_race_visibility),
        # The calibrated residual: exposure ~ U(0.25, 1.75) x threshold, so
        # the adversary wins about half the gambles by construction.  The
        # envelope brackets that design point; the sweeps chart it.
        expected=VerdictEnvelope(
            min_false_grant_rate=0.15,
            max_false_grant_rate=0.85,
        ),
    ),
    AttackScenario(
        name="overlay-click-steal",
        family="overlay",
        description="transparent overlay stealing a genuine click on the editor",
        build_config=_build_config,
        run_trial=_wrap(_overlay_steal),
        expected=_AIRTIGHT,
    ),
    AttackScenario(
        name="launder-pipe-chain",
        family="launder",
        description="aging stamp relayed through a pipe chain totalling > delta",
        build_config=_build_config,
        run_trial=_wrap(_launder_pipes),
        expected=_AIRTIGHT,
    ),
    AttackScenario(
        name="launder-msgqueue-relay",
        family="launder",
        description="stamp re-sent through message queues hoping transit refreshes it",
        build_config=_build_config,
        run_trial=_wrap(_launder_msgqueue),
        expected=_AIRTIGHT,
    ),
    AttackScenario(
        name="ptrace-inject-blessed",
        family="ptrace",
        description="blessed malware injecting a device open into a traced child",
        build_config=_build_config,
        run_trial=_wrap(_ptrace_inject),
        expected=_AIRTIGHT,
    ),
    AttackScenario(
        name="ptrace-detach-race",
        family="ptrace",
        description="attach, detach, then let the still-blessed child open the mic",
        build_config=_build_config,
        run_trial=_wrap(_ptrace_detach_race),
        # The documented residual: detaching restores permissions while the
        # inherited stamp is still fresh, so the attack succeeds every
        # time.  The envelope *requires* that, so the suite regresses if
        # the modelled defence silently grows beyond the paper's design.
        expected=VerdictEnvelope(
            min_false_grant_rate=1.0,
            max_false_grant_rate=1.0,
        ),
    ),
)

FAMILIES: Tuple[str, ...] = tuple(
    sorted({scenario.family for scenario in CORPUS})
)

_BY_NAME: Dict[str, AttackScenario] = {s.name: s for s in CORPUS}


def scenario_by_name(name: str) -> AttackScenario:
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown scenario {name!r}; known: {known}") from None


def scenarios_for_families(
    families: Optional[Iterable[str]] = None,
) -> List[AttackScenario]:
    """The corpus slice for *families* (None: everything), in corpus order."""
    if families is None:
        return list(CORPUS)
    wanted = set(families)
    unknown = wanted - set(FAMILIES)
    if unknown:
        raise KeyError(
            f"unknown families {sorted(unknown)}; known: {', '.join(FAMILIES)}"
        )
    return [scenario for scenario in CORPUS if scenario.family in wanted]
