"""The declarative attack-scenario model.

An :class:`AttackScenario` packages one adversary playbook as data: how to
configure the target machine, how the adversary (and the benign probe that
measures collateral damage) behaves on the simulated clock, and what the
oracle considers a win.  The campaign engine replays scenarios against a
*protected* machine (Overhaul installed) and, for viability calibration,
against an unprotected *baseline* -- the same split as the attack matrix,
but parameterized, randomized per trial, and scored as rates.

Verdict vocabulary
------------------

- **false grant** -- the adversary obtained a mediated resource on the
  protected machine.  The headline security metric; most scenarios expect
  a rate of exactly zero, and the two that do not (the visibility race and
  the ptrace detach race) document residual risk the paper accepts.
- **false deny**  -- the scenario's *benign* probe (a legitimate user
  action riding along with the attack) was denied on the protected
  machine.  The usability cost of the defence.
- **detection**   -- a blocked trial left at least one operator-visible
  artifact (overlay alert, suppressed-interaction record, synthetic-input
  filter count, denial in the audit/decision logs).

Determinism: trials never touch wall clock or global randomness.  All
jitter comes from the :class:`~repro.sim.rng.RandomSource` handed to the
trial, which the harness spawns from keys of the form
``("redteam", scenario, arm, trial_index)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.core.config import OverhaulConfig
from repro.core.system import Machine
from repro.obs.counters import collect_counters
from repro.sim.rng import RandomSource


@dataclass(frozen=True)
class TrialOutcome:
    """What one scenario trial produced on one machine."""

    #: The adversary obtained at least one mediated resource.
    attack_granted: bool
    #: The benign probe's legitimate action was denied (None: no probe).
    benign_denied: Optional[bool] = None
    #: A blocked attack left an operator-visible artifact.
    detected: bool = False
    #: Free-form diagnostic for humans; never enters aggregates.
    detail: str = ""


@dataclass(frozen=True)
class VerdictEnvelope:
    """The bounds a scenario's campaign score must stay inside.

    The campaign test tier asserts these, which is what makes the security
    argument regress loudly: a scenario drifting out of its envelope fails
    the suite, not just a dashboard.
    """

    #: Inclusive bounds on the protected-machine false-grant rate.
    max_false_grant_rate: float = 0.0
    min_false_grant_rate: float = 0.0
    #: Floor on the detection rate over *blocked* trials.
    min_detection_rate: float = 1.0
    #: Ceiling on the benign probe's false-deny rate (protected machine).
    max_false_deny_rate: float = 0.0
    #: Floor on the baseline viability rate (the attack must actually work
    #: on a stock system, or the scenario proves nothing).
    min_baseline_success_rate: float = 1.0


@dataclass(frozen=True)
class AttackScenario:
    """One parameterized adversary playbook.

    ``run_trial`` drives the full trial on one machine: victim setup, the
    adversary schedule on the sim clock, the benign probe, and the oracle.
    It receives the :class:`OverhaulConfig` even for baseline machines
    (where ``machine.overhaul`` is None) so timing draws are identical in
    both arms -- the baseline run answers "was this attack viable at all",
    not "was the stock system slower".
    """

    name: str
    family: str
    description: str
    #: Builds the protected machine's configuration.  ``overrides`` may
    #: carry ``delta`` / ``visibility`` (simulated microseconds) from the
    #: parameter sweeps.
    build_config: Callable[[Dict[str, int]], OverhaulConfig]
    #: (machine, rng, config) -> TrialOutcome.
    run_trial: Callable[[Machine, RandomSource, OverhaulConfig], TrialOutcome]
    expected: VerdictEnvelope = field(default_factory=VerdictEnvelope)

    def config(self, overrides: Optional[Dict[str, int]] = None) -> OverhaulConfig:
        return self.build_config(dict(overrides or {}))


def detection_artifacts(machine: Machine) -> int:
    """Count the operator-visible traces an attack left on *machine*.

    Everything here is an artifact the paper's design intentionally
    surfaces: denials land in the decision/audit logs, UI-deception
    attempts land in the suppressed-interaction record, synthetic input
    is counted by the provenance filter, and blocked captures/alerts hit
    the overlay.  A baseline machine has no Overhaul layer and therefore
    detects nothing -- which is the point of the comparison.
    """
    xserver = machine.xserver
    artifacts = (
        xserver.sendevent_blocked
        + xserver.property_snoops_blocked
        + xserver.screen_captures_denied
        + xserver.overlay.total_shown
    )
    overhaul = machine.overhaul
    if overhaul is not None:
        artifacts += overhaul.monitor.deny_count
        artifacts += len(overhaul.extension.suppressed)
        artifacts += overhaul.extension.synthetic_inputs_seen
    return artifacts


def run_counted_trial(
    scenario: AttackScenario,
    root: RandomSource,
    trial_index: int,
    protected: bool,
    overrides: Optional[Dict[str, int]] = None,
) -> tuple:
    """Run one deterministic trial; return (outcome, counter snapshot).

    The trial's stream is spawned from a key that names the scenario, the
    arm, and the trial index -- never the shard or worker that happens to
    execute it, which is what keeps fleet aggregates byte-identical for
    any worker count.  The counter snapshot comes from the trial's own
    fresh machine, so shards can never share registry state.
    """
    arm = "protected" if protected else "baseline"
    rng = root.spawn(("redteam", scenario.name, arm, trial_index))
    config = scenario.config(overrides)
    if protected:
        machine = Machine.with_overhaul(config, name=f"rt-{scenario.name}")
    else:
        machine = Machine.baseline(name=f"rt-{scenario.name}-baseline")
    outcome = scenario.run_trial(machine, rng, config)
    return outcome, collect_counters(machine).snapshot()


def run_scenario_trial(
    scenario: AttackScenario,
    root: RandomSource,
    trial_index: int,
    protected: bool,
    overrides: Optional[Dict[str, int]] = None,
) -> TrialOutcome:
    """Run one deterministic trial of *scenario* on a fresh machine."""
    return run_counted_trial(scenario, root, trial_index, protected, overrides)[0]
